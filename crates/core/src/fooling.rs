//! The Fooling Lemma (Lemma 4.13) as an executable driver.
//!
//! **Lemma 4.13.** Let `u, v` be co-primitive, `f : ℕ → ℕ` injective. If
//! `w₁·uᵖ·w₂·v^{f(p)}·w₃ ∈ L(φ)` for all `p`, then
//! `w₁·uˢ·w₂·vᵗ·w₃ ∈ L(φ)` for some `t ≠ f(s)` — so the language
//! `{w₁·uᵖ·w₂·v^{f(p)}·w₃}` is not FC-definable (Prop 4.14).
//!
//! The driver takes a [`FoolingInstance`], searches (with the exact
//! solver) for `p ≠ q` with `w₁·uᵖ·w₂ ≡_k w₁·u^q·w₂`, assembles the
//! *fooling pair* — a word inside the language and a word outside it that
//! are ≡_k — and confirms the pair with the solver. This machine-checks
//! the lemma's conclusion instance by instance, and produces the witnesses
//! reported in EXPERIMENTS.md (E14/E15).

use crate::batch::{BatchConfig, BatchSolver, BatchStats, StructureArena, WordId};
use crate::solver::EfSolver;
use crate::GamePair;
use fc_words::conjugacy::are_coprimitive;
use fc_words::{Alphabet, Word};

/// One Fooling Lemma instance: the frame `w₁ · u^p · w₂ · v^{f(p)} · w₃`.
pub struct FoolingInstance {
    /// Left frame word w₁.
    pub w1: Word,
    /// The pumped block u (must be primitive; co-primitive with `v`).
    pub u: Word,
    /// Middle frame word w₂.
    pub w2: Word,
    /// The dependent block v.
    pub v: Word,
    /// Right frame word w₃.
    pub w3: Word,
    /// The injective exponent function f.
    pub f: Box<dyn Fn(usize) -> usize>,
}

/// A verified fooling pair for a language window.
#[derive(Clone, Debug)]
pub struct FoolingPair {
    /// The member word `w₁·uᵖ·w₂·v^{f(p)}·w₃ ∈ L`.
    pub inside: Word,
    /// The non-member `w₁·u^q·w₂·v^{f(p)}·w₃ ∉ L` (q ≠ p, f injective).
    pub outside: Word,
    /// The exponent of the member.
    pub p: usize,
    /// The exponent of the non-member.
    pub q: usize,
    /// The rank at which the two words are ≡_k (solver-confirmed).
    pub k: u32,
}

impl FoolingInstance {
    /// Builds an instance, checking the co-primitivity precondition.
    ///
    /// # Errors
    /// Returns a message if `u, v` are not co-primitive.
    pub fn new(
        w1: impl Into<Word>,
        u: impl Into<Word>,
        w2: impl Into<Word>,
        v: impl Into<Word>,
        w3: impl Into<Word>,
        f: impl Fn(usize) -> usize + 'static,
    ) -> Result<FoolingInstance, String> {
        let (w1, u, w2, v, w3) = (w1.into(), u.into(), w2.into(), v.into(), w3.into());
        if !are_coprimitive(u.bytes(), v.bytes()) {
            return Err(format!("u = {u} and v = {v} are not co-primitive"));
        }
        Ok(FoolingInstance {
            w1,
            u,
            w2,
            v,
            w3,
            f: Box::new(f),
        })
    }

    /// The language member for exponent `p`.
    pub fn member(&self, p: usize) -> Word {
        self.assemble(p, (self.f)(p))
    }

    /// The word `w₁·uᵖ·w₂·vᵗ·w₃` for arbitrary exponents.
    pub fn assemble(&self, p: usize, t: usize) -> Word {
        let mut out = self.w1.clone();
        out = out.concat(&self.u.pow(p));
        out = out.concat(&self.w2);
        out = out.concat(&self.v.pow(t));
        out.concat(&self.w3)
    }

    /// Membership of `w` in the instance language `{member(p) : p ≤ bound}`.
    pub fn is_member(&self, w: &Word, bound: usize) -> bool {
        (0..=bound).any(|p| &self.member(p) == w)
    }

    /// The prefix `w₁·uᵖ·w₂` (Claim C.2's intermediate word).
    pub fn prefix(&self, p: usize) -> Word {
        self.w1.concat(&self.u.pow(p)).concat(&self.w2)
    }

    /// The union alphabet of the instance's five block words — every word
    /// this instance can assemble is a word over it, so one
    /// [`StructureArena`] serves the whole exponent scan.
    fn block_alphabet(&self) -> Alphabet {
        [&self.w1, &self.u, &self.w2, &self.v, &self.w3]
            .into_iter()
            .fold(Alphabet::from_symbols(b""), |s, w| s.extended_by(w))
    }

    /// A batch solver for this instance's scans: fingerprints on, inner
    /// solver in auto-parallel mode (the confirmations at rank ≥ 2 are the
    /// few heavy games where the solver's top-level fan-out pays off).
    ///
    /// The rank-2 profile cap is raised to 512: the scan words
    /// `w₁·uᵖ·w₂` grow past the default cap of 64 almost immediately
    /// (p ≥ 8 on the E08 instance), which silently turned the profile
    /// tier off and let every surviving pair reach the solver — the
    /// E08/E09 regression. At cap 512 the O(|U|²) profile pass is still
    /// orders of magnitude cheaper than the rank-2/3 games it prunes.
    fn batch(&self) -> BatchSolver {
        BatchSolver::with_config(
            StructureArena::new(self.block_alphabet()),
            BatchConfig {
                use_fingerprints: true,
                use_rank2_profiles: true,
                rank2_universe_cap: 512,
                solver_threads: 0,
                ..BatchConfig::default()
            },
        )
    }

    /// Searches for `p < q ≤ limit` with `prefix(p) ≡_k prefix(q)`
    /// (Claim C.2: such pairs exist for every k). The scan runs on the
    /// batch engine: `prefix(p)` is interned once and reused across every
    /// `q`, and fingerprint-refuted pairs never start a game.
    pub fn find_prefix_pair(&self, k: u32, limit: usize) -> Option<(usize, usize)> {
        let mut batch = self.batch();
        let ids: Vec<WordId> = (0..=limit).map(|p| batch.intern(&self.prefix(p))).collect();
        let mut pairs: Vec<(WordId, WordId)> = Vec::new();
        let mut exps: Vec<(usize, usize)> = Vec::new();
        for q in 1..=limit {
            for p in 0..q {
                pairs.push((ids[p], ids[q]));
                exps.push((p, q));
            }
        }
        batch.find_first_equivalent(&pairs, k).map(|idx| exps[idx])
    }

    /// Constructs a fooling pair for rank `k` (searching exponents up to
    /// `limit`), confirming with the exact solver that the two full words
    /// are ≡_k. The `inside` word is in the language; the `outside` word is
    /// not (as long as `f` is injective and `q ≠ p`).
    pub fn fooling_pair(&self, k: u32, limit: usize) -> Option<FoolingPair> {
        self.fooling_pair_with_stats(k, limit).0
    }

    /// [`FoolingInstance::fooling_pair`] plus the batch engine's counters
    /// for the E15/P6 report rows. The candidate order (by `(q, p)`,
    /// skipping points where `f` collides) matches the definitional scan
    /// exactly; the batch layer shares each `inside(p)` structure across
    /// all `q` and prunes fingerprint-refutable candidates.
    pub fn fooling_pair_with_stats(
        &self,
        k: u32,
        limit: usize,
    ) -> (Option<FoolingPair>, BatchStats) {
        let mut batch = self.batch();
        for q in 1..=limit {
            for p in 0..q {
                if (self.f)(q) == (self.f)(p) {
                    continue; // f not injective at these points
                }
                let inside = self.assemble(p, (self.f)(p));
                let outside = self.assemble(q, (self.f)(p));
                // Interning is lazy: `inside(p)` is shared across every q,
                // and no structure is built past the first hit.
                let i = batch.intern(&inside);
                let j = batch.intern(&outside);
                if batch.equivalent(i, j, k) {
                    let stats = batch.stats();
                    return (
                        Some(FoolingPair {
                            inside,
                            outside,
                            p,
                            q,
                            k,
                        }),
                        stats,
                    );
                }
            }
        }
        (None, batch.stats())
    }

    /// Verifies a fooling pair end to end: membership of `inside`,
    /// non-membership of `outside`, and solver-confirmed ≡_k.
    pub fn verify(&self, pair: &FoolingPair, bound: usize) -> Result<(), String> {
        if !self.is_member(&pair.inside, bound) {
            return Err(format!("inside word {} is not a member", pair.inside));
        }
        if self.is_member(&pair.outside, bound) {
            return Err(format!("outside word {} is a member", pair.outside));
        }
        let mut solver = EfSolver::new(GamePair::new(
            pair.inside.clone(),
            pair.outside.clone(),
            &Alphabet::from_symbols(b""),
        ));
        if !solver.equivalent_auto(pair.k) {
            return Err(format!("{} ≢_{} {}", pair.inside, pair.k, pair.outside));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coprimitivity_is_enforced() {
        // u = ab, v = ba are conjugate → rejected.
        assert!(FoolingInstance::new("", "ab", "", "ba", "", |p| p).is_err());
        // u = abab imprimitive → rejected.
        assert!(FoolingInstance::new("", "abab", "", "b", "", |p| p).is_err());
        // u = a, v = b co-primitive → accepted.
        assert!(FoolingInstance::new("", "a", "", "b", "", |p| p).is_ok());
    }

    #[test]
    fn assembles_members() {
        let inst = FoolingInstance::new("c", "a", "c", "b", "c", |p| 2 * p).unwrap();
        assert_eq!(inst.member(2).as_str(), "caacbbbbc");
        assert_eq!(inst.assemble(1, 0).as_str(), "cacc");
        assert!(inst.is_member(&Word::from("caacbbbbc"), 5));
        assert!(!inst.is_member(&Word::from("caacbbbc"), 5));
    }

    #[test]
    fn anbn_fooling_pair_at_rank_1() {
        // Example 4.5 / L(a^n b^n): u = a, v = b, f = id.
        let inst = FoolingInstance::new("", "a", "", "b", "", |p| p).unwrap();
        let pair = inst.fooling_pair(1, 8).expect("fooling pair at k=1");
        inst.verify(&pair, 16).expect("pair verifies");
        assert_ne!(pair.p, pair.q);
    }

    #[test]
    fn prefix_pair_search_matches_pseudo_congruence_route() {
        let inst = FoolingInstance::new("", "a", "", "b", "", |p| p).unwrap();
        let (p, q) = inst.find_prefix_pair(1, 8).expect("prefix pair");
        assert!(p < q);
    }

    #[test]
    fn a_ba_instance_from_prop_4_6() {
        // L1 = {a^n (ba)^n}: u = a, v = ba — co-primitive (r = 1).
        let inst = FoolingInstance::new("", "a", "", "ba", "", |p| p).unwrap();
        let pair = inst.fooling_pair(1, 8).expect("fooling pair");
        inst.verify(&pair, 16).expect("verifies");
    }
}
