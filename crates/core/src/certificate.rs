//! Distinguishing-formula synthesis: turning Spoiler wins into FC
//! certificates.
//!
//! Theorem 3.5's proof is constructive in the textbook treatment: if
//! Spoiler wins the k-round game on (𝔄_w, 𝔅_v), there is an FC sentence
//! of quantifier rank ≤ k true in 𝔄_w and false in 𝔅_v. This module
//! implements that construction on top of the exact solver — from a
//! Spoiler winning strategy it synthesizes an actual [`Formula`], which
//! the model checker then verifies on both words. The formula is an
//! independently checkable *certificate* of `w ≢_k v`.
//!
//! Construction (standard back-and-forth): at a losing-for-Duplicator
//! state, either the current tuples already violate the partial
//! isomorphism — then some atom `(t_l ≐ t_i·t_j)` over the chosen terms
//! and constants separates the structures — or Spoiler has a move such
//! that *every* response loses one round earlier; picking in 𝔄 yields
//! `∃x: ⋀_b ψ_b` (one recursive certificate per Duplicator response),
//! picking in 𝔅 yields the dual `¬∃x: ⋀_a ψ_a` with the roles swapped.

use crate::arena::{GamePair, Side};
use crate::partial_iso::Pair;
use crate::solver::EfSolver;
use fc_logic::{FactorId, Formula, Term};

/// Synthesizes a rank-≤ k sentence with `𝔄_w ⊨ φ` and `𝔅_v ⊭ φ`, or
/// `None` if `w ≡_k v`.
pub fn distinguishing_sentence(w: &str, v: &str, k: u32) -> Option<Formula> {
    let game = GamePair::of(w, v);
    let mut ctx = CertCtx {
        solver_ab: EfSolver::new(game.clone()),
        solver_ba: EfSolver::new(game.swapped()),
        game,
        fresh: 0,
    };
    if ctx.solver_ab.equivalent(k) {
        return None;
    }
    // Terms for the seeded constant pairs: the constants themselves.
    let mut terms: Vec<Term> = Vec::new();
    let mut state: Vec<Pair> = Vec::new();
    let syms: Vec<u8> = ctx.game.a.alphabet().symbols().to_vec();
    for (i, &(pa, pb)) in ctx.game.constant_pairs.clone().iter().enumerate() {
        let term = if i < syms.len() {
            Term::Sym(syms[i])
        } else {
            Term::Epsilon
        };
        terms.push(term);
        state.push((pa, pb));
    }
    Some(ctx.distinguish(&state, &terms, k, false))
}

struct CertCtx {
    game: GamePair,
    solver_ab: EfSolver,
    solver_ba: EfSolver,
    fresh: usize,
}

impl CertCtx {
    /// Builds a formula over the given terms that is true in the structure
    /// currently playing the 𝔄 role and false in the 𝔅 role.
    ///
    /// `swapped = false`: roles as in the original game (truth side = a).
    /// `swapped = true`: roles flipped.
    fn distinguish(&mut self, state: &[Pair], terms: &[Term], k: u32, swapped: bool) -> Formula {
        let (truth, falsity) = self.structures(swapped);
        // 1. Current-state violation: find a separating atom.
        if let Some(atom) = separating_atom(&self.game, state, terms, swapped) {
            return atom;
        }
        debug_assert!(k > 0, "Spoiler must win within the budget");
        if k == 0 {
            return Formula::top(); // defensive; unreachable for real wins
        }
        // 2. Find Spoiler's winning move.
        let oriented: Vec<Pair> = if swapped {
            state.iter().map(|&(x, y)| (y, x)).collect()
        } else {
            state.to_vec()
        };
        let solver = if swapped {
            &mut self.solver_ba
        } else {
            &mut self.solver_ab
        };
        // Try truth-side moves first (they give positive ∃ formulas).
        // ⊥ is never needed by Spoiler (a ⊥ ↦ ⊥ answer is inert), and FC
        // variables range over factors only, so ⊥ is excluded here.
        for side in [Side::A, Side::B] {
            let structure = match side {
                Side::A => truth.clone(),
                Side::B => falsity.clone(),
            };
            let moves: Vec<FactorId> = structure.universe().collect();
            for element in moves {
                if solver
                    .best_response_from(&oriented, side, element, k)
                    .is_none()
                {
                    // Spoiler wins by playing `element` on `side`.
                    return self.certify_move(state, terms, k, swapped, side, element);
                }
            }
        }
        unreachable!("Spoiler has a winning move in every losing state");
    }

    fn structures(
        &self,
        swapped: bool,
    ) -> (
        std::sync::Arc<fc_logic::FactorStructure>,
        std::sync::Arc<fc_logic::FactorStructure>,
    ) {
        if swapped {
            (self.game.b.clone(), self.game.a.clone())
        } else {
            (self.game.a.clone(), self.game.b.clone())
        }
    }

    fn certify_move(
        &mut self,
        state: &[Pair],
        terms: &[Term],
        k: u32,
        swapped: bool,
        side: Side,
        element: FactorId,
    ) -> Formula {
        self.fresh += 1;
        let var_name = format!("__c{}", self.fresh);
        let var = Term::var(&var_name);
        let mut new_terms = terms.to_vec();
        new_terms.push(var.clone());

        let (_, falsity) = self.structures(swapped);
        match side {
            Side::A => {
                // φ = ∃x: ⋀_{responses b} ψ_b, true on the truth side with
                // x := element.
                let mut conjuncts: Vec<Formula> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                // FC witnesses range over factors, so the ⊥ response needs
                // no conjunct.
                let responses: Vec<FactorId> = falsity.universe().collect();
                for response in responses {
                    let mut next = state.to_vec();
                    let pair = if swapped {
                        (response, element) // state is stored in original orientation
                    } else {
                        (element, response)
                    };
                    next.push(pair);
                    let psi = self.distinguish(&next, &new_terms, k - 1, swapped);
                    if seen.insert(format!("{psi}")) {
                        conjuncts.push(psi);
                    }
                }
                Formula::Exists(
                    std::rc::Rc::from(var_name.as_str()),
                    Box::new(Formula::and(conjuncts)),
                )
            }
            Side::B => {
                // Dual: Spoiler plays on the falsity side. Build a formula
                // true on the falsity side via role swap, then negate.
                let mut conjuncts: Vec<Formula> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                let (truth, _) = self.structures(swapped);
                let responses: Vec<FactorId> = truth.universe().collect();
                for response in responses {
                    let mut next = state.to_vec();
                    let pair = if swapped {
                        (element, response)
                    } else {
                        (response, element)
                    };
                    next.push(pair);
                    // Flip roles: certificate true where `element` lives.
                    let psi = self.distinguish(&next, &new_terms, k - 1, !swapped);
                    if seen.insert(format!("{psi}")) {
                        conjuncts.push(psi);
                    }
                }
                Formula::not(Formula::Exists(
                    std::rc::Rc::from(var_name.as_str()),
                    Box::new(Formula::and(conjuncts)),
                ))
            }
        }
    }
}

/// Finds an atom over `terms` (R∘ triples, including the equality-with-ε
/// and constant facts) that holds in the truth-side tuple but not the
/// falsity-side tuple, or is false truth-side and true falsity-side
/// (returned negated).
fn separating_atom(
    game: &GamePair,
    state: &[Pair],
    terms: &[Term],
    swapped: bool,
) -> Option<Formula> {
    let n = state.len();
    debug_assert_eq!(n, terms.len());
    let (sa, sb) = if swapped {
        (&game.b, &game.a)
    } else {
        (&game.a, &game.b)
    };
    let elem = |i: usize| -> (FactorId, FactorId) {
        let (x, y) = state[i];
        if swapped {
            (y, x)
        } else {
            (x, y)
        }
    };
    for l in 0..n {
        for i in 0..n {
            for j in 0..n {
                let (la, lb) = elem(l);
                let (ia, ib) = elem(i);
                let (ja, jb) = elem(j);
                let holds_truth = sa.concat_holds(la, ia, ja);
                let holds_false = sb.concat_holds(lb, ib, jb);
                if holds_truth != holds_false {
                    let atom =
                        Formula::eq_cat(terms[l].clone(), terms[i].clone(), terms[j].clone());
                    return Some(if holds_truth {
                        atom
                    } else {
                        Formula::not(atom)
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_logic::eval::{holds, Assignment};
    use fc_logic::FactorStructure;
    use fc_words::Alphabet;

    fn verify_certificate(w: &str, v: &str, k: u32) {
        let phi = distinguishing_sentence(w, v, k)
            .unwrap_or_else(|| panic!("{w} and {v} should be ≢_{k}"));
        assert!(phi.qr() <= k as usize, "qr({phi}) = {} > {k}", phi.qr());
        let sigma = Alphabet::ab()
            .extended_by(&fc_words::Word::from(w))
            .extended_by(&fc_words::Word::from(v));
        let sw = FactorStructure::of_str(w, &sigma);
        let sv = FactorStructure::of_str(v, &sigma);
        assert!(
            holds(&phi, &sw, &Assignment::new()),
            "certificate not true on {w}: {phi}"
        );
        assert!(
            !holds(&phi, &sv, &Assignment::new()),
            "certificate not false on {v}: {phi}"
        );
    }

    #[test]
    fn certifies_unary_inequivalences() {
        verify_certificate("a", "aa", 1);
        verify_certificate("aa", "aaa", 1);
        verify_certificate("aaaa", "aaa", 2);
    }

    #[test]
    fn certifies_binary_inequivalences() {
        verify_certificate("ab", "ba", 1);
        verify_certificate("aab", "aba", 2);
        verify_certificate("abab", "abba", 2);
    }

    #[test]
    fn certifies_mismatched_alphabet_at_rank_zero_or_one() {
        // "ab" vs "aa": the letter b is missing on one side.
        verify_certificate("ab", "aa", 1);
    }

    #[test]
    fn returns_none_on_equivalent_pairs() {
        assert!(distinguishing_sentence("aaa", "aaaa", 1).is_none());
        assert!(distinguishing_sentence("ab", "ab", 2).is_none());
        assert!(distinguishing_sentence(&"a".repeat(12), &"a".repeat(14), 2).is_none());
    }

    #[test]
    fn certificate_for_example_3_3() {
        // a^4 vs a^3 at rank 2 — the paper's opening example, certified by
        // an actual sentence.
        let phi = distinguishing_sentence("aaaa", "aaa", 2).unwrap();
        assert!(phi.qr() <= 2);
        verify_certificate("aaaa", "aaa", 2);
        // And the certificate transfers: it distinguishes other pairs of
        // the same shape iff the structures realise the same facts (spot
        // check: it must be a sentence).
        assert!(phi.is_sentence());
    }
}
