//! Unary ≡_k class tables with semilinear certificates.
//!
//! [`crate::arith`] computes the rank-k type hash of every `aⁿ` on a scan
//! window; this module turns that vector into the object Lemma 3.6 talks
//! about: the ≡_k partition of `{aⁿ}` as a *semilinear* family — finitely
//! many singleton classes below a threshold `T`, then `P` arithmetic
//! progressions of period `P`. The certificate is only accepted when the
//! window shows the tail stable for ≥ [`UnaryClassTable::MARGIN_PERIODS`]
//! periods past `T`; verdicts for exponents beyond the window reduce to
//! `T + ((n − T) mod P)`, which is exact *given* the certificate (any
//! eventually-periodic set — and Lemma 3.6 guarantees the classes are
//! semilinear, hence eventually periodic — that is stable this long on the
//! window has this tail).

use crate::arith::ArithBuildStats;
use fc_words::semilinear::{LinearSet, SemilinearSet};

/// Why a class-table build was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassTableError {
    /// No period ≤ window/MARGIN explains the tail on this window.
    TailNotStable {
        /// The window that was scanned.
        window: u64,
    },
}

impl std::fmt::Display for ClassTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassTableError::TailNotStable { window } => {
                write!(f, "≡_k tail not stable with margin on window 0..={window}")
            }
        }
    }
}

/// The ≡_k classes of `{aⁿ : n ≤ window}` plus the fitted periodic tail.
pub struct UnaryClassTable {
    /// The rank.
    pub k: u32,
    /// Exponents `0..=window` are covered exactly.
    pub window: u64,
    /// Rank-k type hash per exponent (index = n).
    hashes: Vec<u128>,
    /// First exponent of the periodic tail.
    pub threshold: u64,
    /// Tail period.
    pub period: u64,
    /// Class index per exponent, in first-appearance order.
    pub class_of: Vec<u32>,
    /// Classes as sorted exponent lists (window view).
    pub classes: Vec<Vec<u64>>,
    /// Fast-engine build counters.
    pub build_stats: ArithBuildStats,
}

impl UnaryClassTable {
    /// Periods of post-threshold stability the window must exhibit before
    /// the tail certificate is accepted.
    pub const MARGIN_PERIODS: u64 = 4;

    /// Fits the tail and groups classes from a per-exponent hash vector.
    pub fn from_hashes(
        k: u32,
        hashes: Vec<u128>,
        build_stats: ArithBuildStats,
    ) -> Result<UnaryClassTable, ClassTableError> {
        let window = hashes.len() as u64 - 1;
        let (threshold, period) =
            fit_tail(&hashes).ok_or(ClassTableError::TailNotStable { window })?;
        let mut class_of = Vec::with_capacity(hashes.len());
        let mut reps: Vec<u128> = Vec::new();
        let mut classes: Vec<Vec<u64>> = Vec::new();
        for (n, &h) in hashes.iter().enumerate() {
            let id = match reps.iter().position(|&r| r == h) {
                Some(i) => i,
                None => {
                    reps.push(h);
                    classes.push(Vec::new());
                    reps.len() - 1
                }
            };
            class_of.push(id as u32);
            classes[id].push(n as u64);
        }
        Ok(UnaryClassTable {
            k,
            window,
            hashes,
            threshold,
            period,
            class_of,
            classes,
            build_stats,
        })
    }

    /// Reduces an exponent into the window through the certified tail.
    pub fn reduce(&self, n: u64) -> u64 {
        if n <= self.window {
            n
        } else {
            self.threshold + (n - self.threshold) % self.period
        }
    }

    /// `aᵖ ≡_k a^q` — O(1), any exponents.
    pub fn verdict(&self, p: u64, q: u64) -> bool {
        self.hashes[self.reduce(p) as usize] == self.hashes[self.reduce(q) as usize]
    }

    /// The type hash of `aⁿ` (tail-reduced).
    pub fn type_hash(&self, n: u64) -> u128 {
        self.hashes[self.reduce(n) as usize]
    }

    /// The class index of `aⁿ` (tail-reduced).
    pub fn class_index(&self, n: u64) -> u32 {
        self.class_of[self.reduce(n) as usize]
    }

    /// The minimal pair `p < q` with `aᵖ ≡_k a^q`, ordered by `(q, p)` —
    /// the same definitional order as [`crate::pow2::minimal_unary_pair`].
    pub fn minimal_pair(&self) -> Option<(u64, u64)> {
        for q in 0..self.hashes.len() {
            for p in 0..q {
                if self.hashes[p] == self.hashes[q] {
                    return Some((p as u64, q as u64));
                }
            }
        }
        None
    }

    /// Each class as a semilinear set: singletons below the threshold,
    /// `offset + period·ℕ` parts for the classes that reach the tail.
    pub fn semilinear_classes(&self) -> Vec<SemilinearSet> {
        self.classes
            .iter()
            .map(|members| {
                let mut parts = Vec::new();
                for &n in members {
                    if n >= self.threshold && n < self.threshold + self.period {
                        parts.push(LinearSet::new(n, [self.period]));
                    } else if n < self.threshold {
                        parts.push(LinearSet::singleton(n));
                    }
                    // Members past threshold+period are generated by the
                    // arithmetic part anchored in [threshold, threshold+period).
                }
                SemilinearSet::new(parts)
            })
            .collect()
    }

    /// Human-readable certificate: the threshold/period plus each class.
    pub fn certificate(&self) -> String {
        let mut out = format!(
            "rank {}: {} classes on 0..={}, tail threshold {} period {} (stable ≥ {} periods)\n",
            self.k,
            self.classes.len(),
            self.window,
            self.threshold,
            self.period,
            (self.window - self.threshold) / self.period,
        );
        for (i, s) in self.semilinear_classes().iter().enumerate() {
            let parts: Vec<String> = s
                .parts
                .iter()
                .map(|l| {
                    if l.periods.is_empty() {
                        format!("{{{}}}", l.offset)
                    } else {
                        format!("{{{} + {}·ℕ}}", l.offset, l.periods[0])
                    }
                })
                .collect();
            out.push_str(&format!("  class {}: {}\n", i + 1, parts.join(" ∪ ")));
        }
        out
    }
}

/// The smallest `(threshold, period)` with `hash[n] = hash[n + P]` for all
/// `n ∈ [T, window − P]`, requiring ≥ MARGIN_PERIODS periods of evidence.
/// Exposed for the periodic-table builder in [`crate::batch`], which fits
/// the same shape over class indices instead of type hashes.
pub fn fit_tail(hashes: &[u128]) -> Option<(u64, u64)> {
    let len = hashes.len() as u64;
    for period in 1..=len / (UnaryClassTable::MARGIN_PERIODS + 1) {
        // Smallest threshold for this period: scan back from the window end.
        let mut t = len - period;
        while t > 0 && hashes[t as usize - 1] == hashes[(t - 1 + period) as usize] {
            t -= 1;
        }
        if len - period >= t && (len - period - t) / period >= UnaryClassTable::MARGIN_PERIODS {
            return Some((t, period));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_from(hashes: Vec<u128>) -> Result<UnaryClassTable, ClassTableError> {
        UnaryClassTable::from_hashes(9, hashes, ArithBuildStats::default())
    }

    #[test]
    fn fit_finds_smallest_threshold_and_period() {
        // 0 1 2 3 4 3 4 3 4 3 4 3 4 : T = 3, P = 2.
        let h: Vec<u128> = [0u128, 1, 2, 3, 4, 3, 4, 3, 4, 3, 4, 3, 4].to_vec();
        let t = table_from(h).expect("stable");
        assert_eq!((t.threshold, t.period), (3, 2));
        assert!(t.verdict(3, 5) && t.verdict(4, 100_000_000));
        assert!(!t.verdict(3, 4) && !t.verdict(0, 2));
        assert_eq!(t.minimal_pair(), Some((3, 5)));
    }

    #[test]
    fn margin_is_enforced() {
        // Periodic only for 2 trailing periods: rejected.
        let h: Vec<u128> = [0u128, 1, 2, 3, 4, 5, 6, 5, 6].to_vec();
        assert!(table_from(h).is_err());
    }

    #[test]
    fn constant_tail_is_period_one() {
        let h: Vec<u128> = [7u128, 8, 9, 9, 9, 9, 9, 9, 9, 9].to_vec();
        let t = table_from(h).expect("stable");
        assert_eq!((t.threshold, t.period), (2, 1));
        assert_eq!(t.classes.len(), 3);
        assert_eq!(t.class_index(1_000_000), t.class_index(2));
    }

    #[test]
    fn semilinear_certificates_match_membership() {
        let h: Vec<u128> = [0u128, 1, 2, 3, 4, 3, 4, 3, 4, 3, 4, 3, 4].to_vec();
        let t = table_from(h).expect("stable");
        let sets = t.semilinear_classes();
        assert_eq!(sets.len(), t.classes.len());
        for n in 0..=200u64 {
            let class = t.class_index(n) as usize;
            for (i, s) in sets.iter().enumerate() {
                assert_eq!(s.contains(n), i == class, "n={n} set={i}");
            }
        }
        assert!(t.certificate().contains("threshold 3 period 2"));
    }
}
