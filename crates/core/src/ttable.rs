//! A process-shareable concurrent transposition table for the EF-game
//! solver (docs/SOLVER.md §9).
//!
//! The table memoizes subgame verdicts `(game, state, k) ↦ bool` across
//! *solvers*: the parallel search's workers share one table instead of
//! re-deriving identical subgames once per memo shard, `fc serve` keeps a
//! bounded per-engine table alive across requests, and the batch engine
//! probes canonical root entries as its fourth verdict tier.
//!
//! ## Layout
//!
//! The table is a sharded, open-addressing array of atomic `u64` slots —
//! probed lock-free, inserted by plain atomic stores (a slot is a single
//! word, so readers always observe a complete entry; there is no tearing
//! and no locking anywhere). Each slot packs
//!
//! ```text
//! [ tag : 54 | generation : 8 | verdict : 1 | occupied : 1 ]
//! ```
//!
//! An entry is addressed by one hash of its key and identified by a
//! second, independent hash (the 54-bit tag). Together with the index
//! bits, an entry is recognised on ~70+ bits of key material; the solver
//! additionally replays table-hit verdicts on small instances under
//! `debug_assertions` (the same discipline as the arithmetic tier's
//! verdict replay in `crate::batch`).
//!
//! ## Eviction and soundness
//!
//! Capacity is enforced generationally, with the same wholesale-clear
//! discipline as `fc-lang`'s `PlanCache` and the succinct backend's
//! concat cap: each shard counts its inserts, and when the count reaches
//! the shard's slot budget the shard's generation is bumped — every
//! older entry becomes invisible to probes in O(1), without touching the
//! slots. The memory footprint is fixed at construction ([`TransTable::bytes`]
//! never changes), so a serve-held table stays flat under unbounded
//! request churn.
//!
//! The eviction argument for soundness is one line: **a stale-generation
//! entry may only be *absent*, never wrong**. Entries map a key to the
//! value of a pure function (the game value of a fixed subgame), so a
//! surviving entry is correct no matter when it was written; eviction
//! only ever converts "present" into "absent", and an absent entry just
//! re-runs the search.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shards. Each shard evicts independently, so a burst of
/// inserts invalidates at most `1/SHARDS` of the table at a time.
const SHARDS: usize = 8;

/// Probe window: how many consecutive slots a key may land in.
const WINDOW: usize = 4;

const OCCUPIED_BIT: u64 = 1;
const VERDICT_BIT: u64 = 1 << 1;
const GEN_SHIFT: u32 = 2;
const GEN_MASK: u64 = 0xff;
const TAG_SHIFT: u32 = 10;

/// Counters and capacity of a [`TransTable`], for `stats` endpoints and
/// benchmark legs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransTableStats {
    /// Probes that found a current-generation entry with a matching tag.
    pub hits: u64,
    /// Probes that found nothing (including stale-generation entries).
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries displaced (window full) or invalidated wholesale by a
    /// generation bump.
    pub evictions: u64,
    /// Total slot count (fixed at construction).
    pub capacity: u64,
}

impl TransTableStats {
    /// Hit rate over all probes, in `[0, 1]`; `0` when unprobed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    slots: Box<[AtomicU64]>,
    /// Current generation (low 8 bits significant). Entries written under
    /// an older generation read as absent.
    generation: AtomicU64,
    /// Inserts since the last generation bump.
    live: AtomicU64,
}

impl Shard {
    fn new(slots: usize) -> Shard {
        Shard {
            slots: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            generation: AtomicU64::new(0),
            live: AtomicU64::new(0),
        }
    }
}

/// The concurrent transposition table. All methods take `&self`; share it
/// via `Arc` between workers, requests, and batch pairs.
pub struct TransTable {
    shards: Vec<Shard>,
    /// Slot-index mask within one shard (slots per shard is a power of 2).
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Default capacity (total slots) for solver-created tables: 2²⁰ slots =
/// 8 MiB.
pub const DEFAULT_TABLE_CAPACITY: usize = 1 << 20;

impl TransTable {
    /// A table with at least `capacity` slots (rounded up so each of the
    /// [`SHARDS`] shards holds a power of two, minimum 128 slots each).
    /// The allocation happens here and never grows.
    pub fn new(capacity: usize) -> TransTable {
        let per_shard = capacity.div_ceil(SHARDS).next_power_of_two().max(128);
        TransTable {
            shards: (0..SHARDS).map(|_| Shard::new(per_shard)).collect(),
            mask: (per_shard - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A table with [`DEFAULT_TABLE_CAPACITY`] slots.
    pub fn with_default_capacity() -> TransTable {
        TransTable::new(DEFAULT_TABLE_CAPACITY)
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.shards.len() * (self.mask as usize + 1)
    }

    /// Fixed memory footprint of the slot arrays in bytes. Constant for
    /// the lifetime of the table — the churn tests pin exactly this.
    pub fn bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<AtomicU64>()
    }

    /// Looks up the verdict of `(game, state, k)`.
    pub fn probe(&self, game: u64, state: &[u64], k: u32) -> Option<bool> {
        let (shard_idx, slot_idx, tag) = self.address(game, state, k);
        let shard = &self.shards[shard_idx];
        let generation = shard.generation.load(Ordering::Relaxed) & GEN_MASK;
        for off in 0..WINDOW {
            let idx = (slot_idx + off as u64) & self.mask;
            let entry = shard.slots[idx as usize].load(Ordering::Relaxed);
            if entry & OCCUPIED_BIT == 0 {
                continue;
            }
            if (entry >> GEN_SHIFT) & GEN_MASK != generation {
                continue; // stale generation: absent, never wrong
            }
            if entry >> TAG_SHIFT == tag {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry & VERDICT_BIT != 0);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records the verdict of `(game, state, k)`. Within the probe window
    /// an empty or stale slot is claimed first; failing that, the entry
    /// displaces the first slot of the window (always-replace, counted as
    /// an eviction).
    pub fn insert(&self, game: u64, state: &[u64], k: u32, verdict: bool) {
        let (shard_idx, slot_idx, tag) = self.address(game, state, k);
        let shard = &self.shards[shard_idx];
        let generation = shard.generation.load(Ordering::Relaxed) & GEN_MASK;
        let entry = (tag << TAG_SHIFT)
            | (generation << GEN_SHIFT)
            | if verdict { VERDICT_BIT } else { 0 }
            | OCCUPIED_BIT;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut victim = None;
        for off in 0..WINDOW {
            let idx = ((slot_idx + off as u64) & self.mask) as usize;
            let old = shard.slots[idx].load(Ordering::Relaxed);
            let old_stale = old & OCCUPIED_BIT == 0 || (old >> GEN_SHIFT) & GEN_MASK != generation;
            if old >> TAG_SHIFT == tag && !old_stale {
                // Same key already present (another worker got here first):
                // refresh in place, no new live entry.
                shard.slots[idx].store(entry, Ordering::Relaxed);
                return;
            }
            if old_stale && victim.is_none() {
                victim = Some(idx);
            }
        }
        let idx = match victim {
            Some(idx) => idx,
            None => {
                // Window full of live entries: displace the first slot.
                self.evictions.fetch_add(1, Ordering::Relaxed);
                (slot_idx & self.mask) as usize
            }
        };
        shard.slots[idx].store(entry, Ordering::Relaxed);
        // Generational capacity enforcement: once a shard has absorbed as
        // many live inserts as it has slots, bump its generation — every
        // older entry becomes invisible at once (the PlanCache wholesale-
        // clear discipline, without touching the slots).
        let live = shard.live.fetch_add(1, Ordering::Relaxed) + 1;
        let budget = self.mask + 1;
        if live >= budget {
            shard.live.store(0, Ordering::Relaxed);
            shard.generation.fetch_add(1, Ordering::Relaxed);
            self.evictions.fetch_add(budget, Ordering::Relaxed);
        }
    }

    /// Probes the *root* entry of a game: the verdict of the whole
    /// `k`-round game under the canonical pair fingerprint. The batch
    /// engine's fourth tier and `fc serve`'s request fast path live here.
    pub fn probe_root(&self, canon_fp: u64, k: u32) -> Option<bool> {
        self.probe(canon_fp, &[], k)
    }

    /// Records a root verdict under the canonical pair fingerprint.
    pub fn insert_root(&self, canon_fp: u64, k: u32, verdict: bool) {
        self.insert(canon_fp, &[], k, verdict);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransTableStats {
        TransTableStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity() as u64,
        }
    }

    /// `(shard, slot, tag)` for a key: two independent mixes of one key
    /// fold — one addresses, one identifies.
    fn address(&self, game: u64, state: &[u64], k: u32) -> (usize, u64, u64) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let fold = |h: u64, x: u64| {
            (h ^ x)
                .wrapping_mul(0x0000_0100_0000_01b3)
                .rotate_left(29)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        };
        h = fold(h, game);
        h = fold(h, u64::from(k) ^ (state.len() as u64) << 32);
        for &x in state {
            h = fold(h, x);
        }
        let addr = splitmix64(h);
        let tag = splitmix64(h ^ 0xd6e8_feb8_6659_fd93) >> TAG_SHIFT;
        let shard = (addr >> 56) as usize % SHARDS;
        (shard, addr & self.mask, tag)
    }
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_verdicts() {
        let t = TransTable::new(1 << 12);
        t.insert(7, &[1, 2, 3], 2, true);
        t.insert(7, &[1, 2, 4], 2, false);
        assert_eq!(t.probe(7, &[1, 2, 3], 2), Some(true));
        assert_eq!(t.probe(7, &[1, 2, 4], 2), Some(false));
        assert_eq!(t.probe(7, &[1, 2, 5], 2), None);
        // Key components all matter.
        assert_eq!(t.probe(8, &[1, 2, 3], 2), None);
        assert_eq!(t.probe(7, &[1, 2, 3], 1), None);
    }

    #[test]
    fn stats_count_probes_and_inserts() {
        let t = TransTable::new(1 << 10);
        assert_eq!(t.probe(1, &[], 1), None);
        t.insert(1, &[], 1, true);
        assert_eq!(t.probe(1, &[], 1), Some(true));
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn bytes_are_fixed_under_churn() {
        let t = TransTable::new(1 << 10);
        let bytes = t.bytes();
        let capacity = t.capacity() as u64;
        for i in 0..20_000u64 {
            t.insert(i, &[i, i ^ 1], 2, i % 3 == 0);
        }
        assert_eq!(t.bytes(), bytes, "slot allocation must never grow");
        let s = t.stats();
        assert_eq!(s.inserts, 20_000);
        assert!(
            s.evictions > 0,
            "20k inserts into {capacity} slots must evict"
        );
    }

    #[test]
    fn generation_bump_reads_as_absent_not_wrong() {
        // Flood one table far past capacity, then re-probe every key: each
        // answer is either the recorded verdict or absent — never flipped.
        let t = TransTable::new(1 << 9);
        let keys: Vec<(u64, bool)> = (0..4096u64).map(|i| (i, i % 2 == 0)).collect();
        for &(i, v) in &keys {
            t.insert(i, &[i], 3, v);
        }
        let mut present = 0u64;
        for &(i, v) in &keys {
            if let Some(got) = t.probe(i, &[i], 3) {
                assert_eq!(got, v, "key {i}: table returned a wrong verdict");
                present += 1;
            }
        }
        assert!(present > 0, "some recent entries must survive");
        assert!(
            present < keys.len() as u64,
            "a 512-slot table cannot hold 4096 live entries"
        );
    }

    #[test]
    fn concurrent_use_is_safe_and_exact() {
        let t = Arc::new(TransTable::new(1 << 12));
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let key = (w << 32) | i;
                        t.insert(key, &[key], 2, key % 5 == 0);
                        if let Some(v) = t.probe(key, &[key], 2) {
                            assert_eq!(v, key % 5 == 0);
                        }
                    }
                });
            }
        });
        assert_eq!(t.stats().inserts, 8000);
    }

    #[test]
    fn root_probe_is_the_empty_state() {
        let t = TransTable::new(1 << 10);
        t.insert_root(99, 2, true);
        assert_eq!(t.probe_root(99, 2), Some(true));
        assert_eq!(t.probe(99, &[], 2), Some(true));
        assert_eq!(t.probe_root(99, 3), None);
    }
}
