//! Rank-aware invariant fingerprints: refuting `w ≡_k v` without playing
//! the game.
//!
//! A fingerprint is a tuple of cheap hashes of ≡_k-**invariants** — values
//! that `w ≡_k v` forces to coincide. Whenever two fingerprints disagree
//! at rank `k`, the words are provably inequivalent and the batch engine
//! ([`crate::batch`]) can record a `false` verdict without constructing a
//! solver. The converse direction is *not* claimed: equal fingerprints say
//! nothing, and the pair proceeds to the exact solver.
//!
//! ## Soundness
//!
//! The components, and why each is an invariant:
//!
//! - **Letter profile** (rank ≥ 0). The ground atoms of τ_Σ are exactly
//!   the `c ≐ c'·c''` facts over letter constants and ε, and (since the
//!   constants are single letters) these hold iff the involved letters
//!   occur. So `w ≡_0 v` iff the occurring-letter sets agree — and
//!   `≡_k ⊆ ≡_0` makes the profile an invariant at every rank.
//! - **Rank-1 type profile** (rank ≥ 1). For an element `x` of 𝔄_w, its
//!   atom type is the truth vector of all atoms `t₁ ≐ t₂·t₃` over the
//!   terms `{x} ∪ {letter constants, ε}` (equality `x = c` is the atom
//!   `x ≐ c·ε`). A quantifier-rank-1 sentence `∃x φ(x)` with
//!   quantifier-free `φ` can pin any such type exactly, so `w ≡_1 v`
//!   forces the *sets* of realised types to coincide; by monotonicity the
//!   profile is invariant for every `k ≥ 1`. (This is precisely what the
//!   solver's first round can distinguish: a Duplicator response to `x`
//!   keeps the constant-seeded tuples a partial isomorphism iff its type
//!   equals the type of `x`.)
//! - **Truncated factor sets** (rank ≥ 1). A factor `u` with `|u| ≤ k+1`
//!   is pinned by the rank-k sentence
//!   `∃x₁…∃x_{|u|−1}: x₁ ≐ c·c' ∧ x₂ ≐ x₁·c'' ∧ …` (left-to-right
//!   chain), so `w ≡_k v` implies `Facs(w)` and `Facs(v)` agree on all
//!   words of length ≤ k+1. The fingerprint stores one running hash per
//!   truncation level up to [`FACTOR_LEVEL_CAP`].
//!
//! A fourth, heavier invariant lives beside the `Fingerprint` proper: the
//! **rank-2 type profile** ([`rank2_type_profile`], rank ≥ 2). One level
//! of back-and-forth type refinement: for each first-round move
//! `x ∈ U ∪ {⊥}`, the rank-1 type of the expansion `(𝔄, x)` is the pair
//! (atom type of `x`, *set* of two-move atom types `vec₂(x, x')` over all
//! second moves `x'`), where `vec₂` is the truth vector of every atom
//! `t₁ ≐ t₂·t₃` over the terms `{x, x'} ∪ constants` plus the equality
//! bit `x = x'`. Two pinned pairs extend the constant seeding
//! consistently **iff** their `vec₂` vectors coincide (Definition 3.1
//! quantifies exactly these atoms and the equality pattern; `t ≐ c·ε`
//! decides `t = c`, and `x ≐ x·ε` separates ⊥ from every real element).
//! So `w ≡_2 v` forces a winning first-round response of *equal expansion
//! type* for every first-round move — the realised sets of expansion
//! types coincide, and by `≡_k ⊆ ≡_2` the profile is an invariant for
//! every `k ≥ 2`. This is the component that refutes inequivalent unary
//! pairs like `a⁵ ≢₂ a⁹`, which letter/type1/factor profiles cannot see.
//! Because it costs O(|U|²) per word — more than a small window game, far
//! less than a long-word game — it is not part of the eagerly-built
//! `Fingerprint`: [`crate::batch::StructureArena`] memoizes it lazily,
//! only for words that survive the cheap layers, only under
//! [`TYPE2_UNIVERSE_CAP`], and only when the batch is configured for it.
//!
//! Note what is deliberately **absent**: raw length and per-letter Parikh
//! counts are *not* ≡_k-invariants (`a³ ≡₁ a⁴` is the paper's minimal
//! rank-1 pair), so the fingerprint uses their sound saturated
//! counterparts instead — the truncated factor set encodes run lengths and
//! letter multiplicities exactly up to the cap and not beyond.
//!
//! Hash collisions only ever *weaken* the filter (a collision makes two
//! different profiles look equal, so the pair falls through to the
//! solver); they can never refute an equivalent pair, because equal
//! profiles hash equally under the deterministic fold. The batch engine
//! additionally carries a `debug_assert` differential path proving every
//! fingerprint-refuted pair solver-inequivalent, and the property suite
//! replays the same claim on random windows.
//!
//! Fingerprints are only comparable between structures built over the
//! **same alphabet** Σ (the constant term order enters the type codes);
//! [`crate::batch::StructureArena`] guarantees this by construction.

use fc_logic::FactorStructure;

/// Highest factor-set truncation level the fingerprint stores. Ranks with
/// `k + 1 > FACTOR_LEVEL_CAP` compare at the cap (still sound — a coarser
/// invariant refutes less, never more).
pub const FACTOR_LEVEL_CAP: usize = 8;

/// Universe-size cap for the rank-2 type profile. The profile costs
/// O(|U|²) per word, which is negligible for scan-sized universes but
/// would dominate a long fooling word's intern-plus-solve budget; the
/// arena never computes the profile above the cap (still sound — a
/// missing invariant only weakens the filter).
pub const TYPE2_UNIVERSE_CAP: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u64(mut h: u64, x: u64) -> u64 {
    for byte in x.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[inline]
fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The invariant fingerprint of one word (relative to a fixed Σ).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Hash of the occurring-letter set (the rank-0 profile).
    letters: u64,
    /// Hash of the realised rank-1 atom-type set.
    type1: u64,
    /// `factor_levels[l-1]` hashes the set of factors of length ≤ `l`.
    factor_levels: [u64; FACTOR_LEVEL_CAP],
}

impl Fingerprint {
    /// Computes the fingerprint of `s` (one pass over the universe; the
    /// arena calls this once per word at build time).
    pub fn of(s: &FactorStructure) -> Fingerprint {
        // Letter profile: which constants are non-⊥, in Σ order.
        let mut letters = FNV_OFFSET;
        for &c in s.alphabet().symbols() {
            if !s.constant(c).is_bottom() {
                letters = fnv_bytes(letters, &[c]);
            }
        }

        // Rank-1 type profile: the realised set of per-element type codes.
        let consts = s.constants_vector();
        let mut codes: Vec<u64> = s.universe().map(|x| type_code(s, &consts, x)).collect();
        codes.sort_unstable();
        codes.dedup();
        let mut type1 = FNV_OFFSET;
        for code in codes {
            type1 = fnv_u64(type1, code);
        }

        // Truncated factor sets, as **commutative** per-length folds: each
        // short factor contributes a per-factor FNV hash, and a length
        // bucket is the wrapping sum of its factors' hashes. Summation is
        // order-independent, which matters twice over: the two structure
        // backends enumerate factors in different orders (dense: (length,
        // lex); succinct: automaton discovery), and fingerprints must stay
        // comparable across them — equal factor *sets* must hash equally
        // no matter which backend produced either side. Collisions (two
        // different sets with equal sums) only ever weaken the filter, as
        // with any hash. `short_factor_ids` keeps this O(short factors)
        // instead of O(|U|) on long-word structures.
        let mut buckets = [0u64; FACTOR_LEVEL_CAP + 1];
        for id in s.short_factor_ids(FACTOR_LEVEL_CAP) {
            let bytes = s.bytes_of(id);
            let h = fnv_bytes(fnv_u64(FNV_OFFSET, bytes.len() as u64), bytes);
            // Bit-mix before summing so near-identical FNV outputs do not
            // cancel structurally.
            buckets[bytes.len()] = buckets[bytes.len()].wrapping_add(h ^ h.rotate_left(31));
        }
        // factor_levels[l-1] covers the factors of length ≤ l.
        let mut factor_levels = [0u64; FACTOR_LEVEL_CAP];
        let mut acc = buckets[0];
        for (l, level) in factor_levels.iter_mut().enumerate() {
            acc = acc.wrapping_add(buckets[l + 1]);
            *level = acc;
        }

        Fingerprint {
            letters,
            type1,
            factor_levels,
        }
    }

    /// `true` iff the fingerprints *prove* the two words inequivalent at
    /// rank `k`. `false` is non-committal (the pair may still be
    /// inequivalent — only the exact solver decides).
    #[inline]
    pub fn refutes(&self, other: &Fingerprint, k: u32) -> bool {
        if self.letters != other.letters {
            return true; // rank-0 invariant, sound for every k
        }
        if k == 0 {
            return false;
        }
        if self.type1 != other.type1 {
            return true;
        }
        let level = (k as usize + 1).min(FACTOR_LEVEL_CAP);
        self.factor_levels[level - 1] != other.factor_levels[level - 1]
    }

    /// The bucket key words must share to *possibly* be ≡_k:
    /// fingerprint-level refutation is exactly key inequality, so hashing
    /// on the key partitions a window into fingerprint-compatible groups.
    /// (The lazily-computed [`rank2_type_profile`] sits outside this key;
    /// the batch layer consults it separately.)
    #[inline]
    pub fn bucket_key(&self, k: u32) -> (u64, u64, u64) {
        if k == 0 {
            return (self.letters, 0, 0);
        }
        let level = (k as usize + 1).min(FACTOR_LEVEL_CAP);
        (self.letters, self.type1, self.factor_levels[level - 1])
    }
}

/// The rank-1 atom type of element `x`: the folded truth vector of every
/// atom `t₁ ≐ t₂·t₃` over the terms `{x} ∪ consts`, in a fixed order
/// shared by both sides of any same-Σ pair. Triples not involving `x` are
/// included for simplicity; they are constant across elements and agree
/// between letter-profile-equal words, so they cannot manufacture a
/// spurious difference.
fn type_code(s: &FactorStructure, consts: &[fc_logic::FactorId], x: fc_logic::FactorId) -> u64 {
    let nterms = consts.len() + 1;
    let term = |i: usize| if i == 0 { x } else { consts[i - 1] };
    let mut h = FNV_OFFSET;
    for l in 0..nterms {
        for i in 0..nterms {
            for j in 0..nterms {
                let holds = s.concat_holds(term(l), term(i), term(j));
                h = fnv_u64(h, u64::from(holds));
            }
        }
    }
    h
}

/// Folds the truth bits of the atom triples in `tris` (term index 0 = `x`,
/// 1 = `y`, ≥ 2 = constants), chunked so any triple count is safe.
fn fold_triples(
    s: &FactorStructure,
    consts: &[fc_logic::FactorId],
    tris: &[(u8, u8, u8)],
    x: fc_logic::FactorId,
    y: fc_logic::FactorId,
) -> u64 {
    let term = |i: u8| match i {
        0 => x,
        1 => y,
        _ => consts[i as usize - 2],
    };
    let mut h = FNV_OFFSET;
    let mut bits = 0u64;
    let mut nbits = 0u32;
    for &(l, i, j) in tris {
        bits = (bits << 1) | u64::from(s.concat_holds(term(l), term(i), term(j)));
        nbits += 1;
        if nbits == 64 {
            h = fnv_u64(h, bits);
            bits = 0;
            nbits = 0;
        }
    }
    fnv_u64(h, bits ^ u64::from(nbits))
}

/// The rank-2 type profile (see the module docs): the folded set of
/// expansion types, where the type of the expansion `(𝔄, x)` folds `x`'s
/// one-move atom mask with the *set* of two-move codes over all second
/// moves `y`. A two-move code names the truth vector of every atom
/// `t₁ ≐ t₂·t₃` over `{x, y} ∪ consts` plus the equality bit `x = y` (the
/// partial-isomorphism equality pattern for a replayed move; equality
/// against constants and ⊥-ness are already decided by the atoms
/// `t ≐ c·ε` and `t ≐ t·ε`), so two pinned second-round extensions are
/// consistent with the constant seeding iff their codes coincide.
///
/// The atom triples split by which moves they mention: constant-only
/// triples are already forced by the letter profile (checked first in
/// [`Fingerprint::refutes`]) and are dropped; x-only and y-only triples
/// are precomputed once per element; only the triples mentioning *both*
/// moves — O(nterms) many of the nterms³ — are evaluated per pair,
/// keeping the whole profile near-quadratic instead of cubic.
///
/// Both move loops range over `U ∪ {⊥}` — Spoiler may play ⊥ in either
/// round, and the ⊥ expansion matches only ⊥ expansions across words
/// (its `x ≐ x·ε` atom is false, unlike every real element's).
///
/// Like every fingerprint component, the profile is only comparable
/// between structures over the same Σ, and `w ≡_k v` for any `k ≥ 2`
/// forces equal profiles — unequal profiles refute. Callers are expected
/// to gate on [`TYPE2_UNIVERSE_CAP`]; the computation itself has no cap.
pub fn rank2_type_profile(s: &FactorStructure) -> u64 {
    let consts = &s.constants_vector();
    let elems: Vec<fc_logic::FactorId> = s
        .universe()
        .chain(std::iter::once(fc_logic::FactorId::BOTTOM))
        .collect();
    let nterms = consts.len() + 2;

    let (mut tri_x, mut tri_y, mut tri_xy) = (Vec::new(), Vec::new(), Vec::new());
    for l in 0..nterms as u8 {
        for i in 0..nterms as u8 {
            for j in 0..nterms as u8 {
                let has_x = l == 0 || i == 0 || j == 0;
                let has_y = l == 1 || i == 1 || j == 1;
                match (has_x, has_y) {
                    (true, false) => tri_x.push((l, i, j)),
                    (false, true) => tri_y.push((l, i, j)),
                    (true, true) => tri_xy.push((l, i, j)),
                    (false, false) => {} // constant-only: forced by the letter profile
                }
            }
        }
    }

    // One-move masks, precomputed per element (the unused move index never
    // occurs in these triple lists, so any placeholder id works).
    let mask_x: Vec<u64> = elems
        .iter()
        .map(|&e| fold_triples(s, consts, &tri_x, e, e))
        .collect();
    let mask_y: Vec<u64> = elems
        .iter()
        .map(|&e| fold_triples(s, consts, &tri_y, e, e))
        .collect();

    let mut expansion_types: Vec<u64> = elems
        .iter()
        .enumerate()
        .map(|(xi, &x)| {
            let mut vecs: Vec<u64> = elems
                .iter()
                .enumerate()
                .map(|(yi, &y)| {
                    let mut h = fnv_u64(FNV_OFFSET, u64::from(x == y));
                    h = fnv_u64(h, mask_x[xi]);
                    h = fnv_u64(h, mask_y[yi]);
                    fnv_u64(h, fold_triples(s, consts, &tri_xy, x, y))
                })
                .collect();
            vecs.sort_unstable();
            vecs.dedup();
            let mut h = fnv_u64(FNV_OFFSET, mask_x[xi]);
            for v in vecs {
                h = fnv_u64(h, v);
            }
            h
        })
        .collect();
    expansion_types.sort_unstable();
    expansion_types.dedup();
    let mut h = FNV_OFFSET;
    for t in expansion_types {
        h = fnv_u64(h, t);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::equivalent;
    use fc_words::{Alphabet, Word};

    fn fp(w: &str, sigma: &Alphabet) -> Fingerprint {
        Fingerprint::of(&FactorStructure::of_str(w, sigma))
    }

    #[test]
    fn identical_words_share_fingerprints() {
        let sigma = Alphabet::ab();
        for w in ["", "a", "ab", "abaab", "bbbb"] {
            assert_eq!(fp(w, &sigma), fp(w, &sigma));
            for k in 0..=4 {
                assert!(!fp(w, &sigma).refutes(&fp(w, &sigma), k), "w={w} k={k}");
            }
        }
    }

    #[test]
    fn letter_profile_refutes_at_rank_zero() {
        let sigma = Alphabet::ab();
        // ab vs aa: different letter sets → refuted at every rank.
        for k in 0..=3 {
            assert!(fp("ab", &sigma).refutes(&fp("aa", &sigma), k), "k={k}");
        }
        // ab vs ba: same letters — rank 0 cannot refute.
        assert!(!fp("ab", &sigma).refutes(&fp("ba", &sigma), 0));
    }

    #[test]
    fn type_profile_refutes_ab_vs_ba_at_rank_one() {
        let sigma = Alphabet::ab();
        // ab ≢₁ ba (the factor ab exists only on one side) and the rank-1
        // profile sees it.
        assert!(fp("ab", &sigma).refutes(&fp("ba", &sigma), 1));
        assert!(!equivalent("ab", "ba", 1));
    }

    #[test]
    fn equivalent_pairs_are_never_refuted() {
        let sigma = Alphabet::unary();
        // a³ ≡₁ a⁴ — the minimal rank-1 pair must survive the filter.
        assert!(equivalent("aaa", "aaaa", 1));
        assert!(!fp("aaa", &sigma).refutes(&fp("aaaa", &sigma), 1));
        // a¹² ≡₂ a¹⁴ (E03's rank-2 minimal pair).
        assert!(!fp(&"a".repeat(12), &sigma).refutes(&fp(&"a".repeat(14), &sigma), 2));
    }

    #[test]
    fn refutation_is_sound_on_the_exhaustive_window() {
        // Every refuted pair must be solver-inequivalent at that rank.
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(4).collect();
        let prints: Vec<Fingerprint> = words
            .iter()
            .map(|w| Fingerprint::of(&FactorStructure::new(w.clone(), &sigma)))
            .collect();
        for (i, w) in words.iter().enumerate() {
            for (j, v) in words.iter().enumerate().skip(i + 1) {
                for k in 0..=2u32 {
                    if prints[i].refutes(&prints[j], k) {
                        assert!(
                            !equivalent(w.as_str(), v.as_str(), k),
                            "fingerprint wrongly refuted {w} ≡_{k} {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn refutation_is_symmetric() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(3).collect();
        for w in &words {
            for v in &words {
                for k in 0..=3u32 {
                    assert_eq!(
                        fp(w.as_str(), &sigma).refutes(&fp(v.as_str(), &sigma), k),
                        fp(v.as_str(), &sigma).refutes(&fp(w.as_str(), &sigma), k),
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_key_equality_is_exactly_non_refutation() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(3).collect();
        for w in &words {
            for v in &words {
                for k in 0..=3u32 {
                    let a = fp(w.as_str(), &sigma);
                    let b = fp(v.as_str(), &sigma);
                    assert_eq!(a.bucket_key(k) == b.bucket_key(k), !a.refutes(&b, k));
                }
            }
        }
    }

    fn rank2(w: &str, sigma: &Alphabet) -> u64 {
        rank2_type_profile(&FactorStructure::of_str(w, sigma))
    }

    #[test]
    fn rank2_profile_separates_inequivalent_unary_pairs() {
        // a^p ≢₂ a^q for p < q ≤ 11 (every exponent below the minimal
        // pair (12, 14) is its own ≡₂-class) — letter/type1/factor
        // components all coincide from p, q ≥ 3 onward, so only the
        // rank-2 type profile can see these. It must see every one of
        // them for the E03 scan to skip the games.
        let sigma = Alphabet::unary();
        for q in 4..=11usize {
            for p in 3..q {
                assert_ne!(
                    rank2(&"a".repeat(p), &sigma),
                    rank2(&"a".repeat(q), &sigma),
                    "rank-2 profile failed to separate a^{p} ≢₂ a^{q}"
                );
            }
        }
    }

    #[test]
    fn rank2_profile_is_invariant_on_equivalent_pairs() {
        // ≡₂ forces equal profiles: the minimal rank-2 pair a¹² ≡₂ a¹⁴
        // must not be separated, nor may any ≡₂-equivalent window pair.
        let unary = Alphabet::unary();
        assert!(equivalent(&"a".repeat(12), &"a".repeat(14), 2));
        assert_eq!(
            rank2(&"a".repeat(12), &unary),
            rank2(&"a".repeat(14), &unary)
        );
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(4).collect();
        for (i, w) in words.iter().enumerate() {
            for v in words.iter().skip(i + 1) {
                if equivalent(w.as_str(), v.as_str(), 2) {
                    assert_eq!(
                        rank2(w.as_str(), &sigma),
                        rank2(v.as_str(), &sigma),
                        "rank-2 profile separated the ≡₂ pair {w}, {v}"
                    );
                }
            }
        }
    }
}
