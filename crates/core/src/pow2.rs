//! Lemma 3.6 ("pow2") made executable: witness pairs `aᵖ ≡_k a^q` and
//! unary ≡_k class structure.
//!
//! The paper proves non-constructively (via semilinearity of unary FC
//! languages and the non-semilinearity of `{2ⁿ}`) that for every `k` there
//! are `p ≠ q` with `aᵖ ≡_k a^q`. On concrete ranks the exact solver finds
//! the *minimal* such pair, and computes the full ≡_k-partition of
//! `{aⁿ : n ≤ limit}` — the quantitative table behind experiment E03.
//!
//! Both the minimal-pair scan and the class tables run on the bulk engine
//! of [`crate::batch`]: one [`StructureArena`] interns `a⁰ … a^limit` once
//! (the scan previously rebuilt `a^q`'s O(q²) concat table for every `p`),
//! fingerprints refute inequivalent pairs without a game, and the verdict
//! memo is shared across the whole scan. The definitional per-pair loops
//! are kept as `*_naive` for the differential suite and the benches.

use crate::batch::{BatchConfig, BatchSolver, BatchStats, StructureArena, WordId};
use crate::solver::equivalent;
use fc_words::semilinear::{LinearSet, SemilinearSet};
use fc_words::{Alphabet, Word};

/// The minimal pair `p < q ≤ limit` with `aᵖ ≡_k a^q`, ordered by `(q, p)`
/// (i.e. the first `q` admitting a smaller equivalent power), or `None`
/// if no pair exists within the limit.
pub fn minimal_unary_pair(k: u32, limit: usize) -> Option<(usize, usize)> {
    minimal_unary_pair_with_stats(k, limit).0
}

/// [`minimal_unary_pair`] plus the batch engine's counters for the E03
/// report row. The scan order (by `(q, p)`) is the result's definition
/// and is preserved exactly: the batch layer only removes redundant
/// structure builds and fingerprint-refutable game runs.
pub fn minimal_unary_pair_with_stats(k: u32, limit: usize) -> (Option<(usize, usize)>, BatchStats) {
    let mut batch =
        BatchSolver::with_config(StructureArena::new(Alphabet::unary()), unary_config());
    // Interning is lazy: `a^q` is only built (and fingerprinted) when the
    // scan reaches `q`, so an early hit — the common case once the limit
    // exceeds the minimal pair — never pays for the words beyond it.
    let mut ids: Vec<WordId> = Vec::with_capacity(limit + 1);
    let a = Word::from("a");
    for q in 0..=limit {
        ids.push(batch.intern(&a.pow(q)));
        for p in 1..q {
            if batch.equivalent(ids[p], ids[q], k) {
                return (Some((p, q)), batch.stats());
            }
        }
    }
    (None, batch.stats())
}

/// The definitional `(q, p)` scan with a fresh solver per probe — the
/// "before" leg of the P9 bench and the differential baseline.
pub fn minimal_unary_pair_naive(k: u32, limit: usize) -> Option<(usize, usize)> {
    for q in 1..=limit {
        for p in 1..q {
            if unary_equivalent(p, q, k) {
                return Some((p, q));
            }
        }
    }
    None
}

/// `aᵖ ≡_k a^q`?
pub fn unary_equivalent(p: usize, q: usize, k: u32) -> bool {
    equivalent(&"a".repeat(p), &"a".repeat(q), k)
}

/// The ≡_k classes of `{aⁿ : 0 ≤ n ≤ limit}`, each class a sorted list of
/// exponents. Classes are found by comparing against representatives
/// (≡_k is an equivalence relation by Theorem 3.5).
pub fn unary_classes(k: u32, limit: usize) -> Vec<Vec<usize>> {
    unary_classes_with_stats(k, limit).0
}

/// [`unary_classes`] plus the batch engine's counters.
pub fn unary_classes_with_stats(k: u32, limit: usize) -> (Vec<Vec<usize>>, BatchStats) {
    let (mut batch, ids) = unary_batch(limit);
    let classes = batch.classify(&ids, k);
    (classes, batch.stats())
}

/// The definitional representative loop (fresh solver per comparison) —
/// differential baseline and bench leg.
pub fn unary_classes_naive(k: u32, limit: usize) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::new();
    'next: for n in 0..=limit {
        for class in classes.iter_mut() {
            let rep = class[0];
            if unary_equivalent(rep, n, k) {
                class.push(n);
                continue 'next;
            }
        }
        classes.push(vec![n]);
    }
    classes
}

/// Parallel version of [`unary_classes`]: the batch engine solves each
/// candidate's unresolved representative comparisons on a work-stealing
/// worker pool. The partition is byte-identical to the sequential one —
/// at most one representative can match any candidate (representatives
/// are pairwise inequivalent and ≡_k is transitive).
pub fn unary_classes_parallel(k: u32, limit: usize, threads: usize) -> Vec<Vec<usize>> {
    let (mut batch, ids) = unary_batch(limit);
    batch.classify_par(&ids, k, threads)
}

/// One batch solver over `{aⁿ : n ≤ limit}`. Interning in exponent order
/// makes the arena id of `aⁿ` exactly `n`, so class/position lists read
/// directly as exponent lists.
fn unary_batch(limit: usize) -> (BatchSolver, Vec<WordId>) {
    let mut arena = StructureArena::new(Alphabet::unary());
    let ids: Vec<WordId> = (0..=limit)
        .map(|n| arena.intern(&Word::from("a").pow(n)))
        .collect();
    (BatchSolver::with_config(arena, unary_config()), ids)
}

/// Unary pairs past tiny exponents share every cheap fingerprint
/// component, while their rank-2 games are the scan's whole cost — the
/// lazily-memoized rank-2 type profile is exactly the trade worth making
/// here (see [`BatchConfig::use_rank2_profiles`]).
fn unary_config() -> BatchConfig {
    BatchConfig {
        use_rank2_profiles: true,
        ..BatchConfig::default()
    }
}

/// A compact rendering of the class table for reports: one line per class.
pub fn render_classes(classes: &[Vec<usize>]) -> String {
    classes
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let members: Vec<String> = c.iter().map(|n| format!("a^{n}")).collect();
            format!("class {}: {{{}}}", i + 1, members.join(", "))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Fits a semilinear description to the *tail class* of the ≡_k partition:
/// the paper's argument implies each ≡_k class of unary words is
/// semilinear, and all large enough exponents coalesce. Returns the fitted
/// set for the class containing `limit`, if the tail is periodic on the
/// observed window.
pub fn fit_tail_class(k: u32, limit: usize) -> Option<SemilinearSet> {
    let classes = unary_classes(k, limit);
    let tail = classes.iter().find(|c| c.contains(&limit))?;
    let profile: Vec<bool> = (0..=limit).map(|n| tail.contains(&n)).collect();
    SemilinearSet::fit(&profile, limit / 2)
}

/// The semilinearity-based refutation behind Lemma 3.6, in executable
/// form: the set `{2ⁿ : n ≤ log₂(limit)}` cannot be a union of the ≡_k
/// classes once two distinct powers of two fall in one class. Returns the
/// offending class (as exponent list) — evidence that any FC sentence of
/// rank k accepting all of `L_pow` accepts a non-member.
pub fn pow2_collision(k: u32, limit: usize) -> Option<Vec<usize>> {
    let classes = unary_classes(k, limit);
    classes.into_iter().find(|c| {
        let pows: Vec<&usize> = c.iter().filter(|&&n| n > 0 && (n & (n - 1)) == 0).collect();
        let non_pows = c.iter().any(|&n| n == 0 || (n & (n - 1)) != 0);
        !pows.is_empty() && non_pows
    })
}

/// The singleton linear sets realised by small classes (for E03's table):
/// classes that are finite windows vs the coalesced tail.
pub fn classes_as_semilinear(k: u32, limit: usize) -> Vec<SemilinearSet> {
    unary_classes(k, limit)
        .into_iter()
        .map(|c| {
            // Heuristic fit: if the class has a periodic tail, fit it;
            // otherwise report it as a finite set (true on the window).
            let profile: Vec<bool> = (0..=limit).map(|n| c.contains(&n)).collect();
            SemilinearSet::fit(&profile, limit / 2).unwrap_or_else(|| {
                SemilinearSet::new(c.into_iter().map(|n| LinearSet::singleton(n as u64)))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_zero_and_one_pairs_exist() {
        // ≡_0 identifies everything with the same alphabet: a^1 ≡_0 a^2.
        assert_eq!(minimal_unary_pair(0, 4), Some((1, 2)));
        // ≡_1: a^3 ≡_1 a^4 (and nothing smaller).
        let (p, q) = minimal_unary_pair(1, 8).expect("rank-1 pair");
        assert!(unary_equivalent(p, q, 1));
        assert!(q <= 5, "minimal rank-1 pair should be small, got ({p},{q})");
    }

    #[test]
    fn batch_scan_matches_naive() {
        for k in 0..=2u32 {
            let limit = if k == 2 { 16 } else { 10 };
            assert_eq!(
                minimal_unary_pair(k, limit),
                minimal_unary_pair_naive(k, limit),
                "k={k}"
            );
        }
        // No pair below the minimum: both agree on None.
        assert_eq!(minimal_unary_pair(1, 3), None);
        assert_eq!(minimal_unary_pair_naive(1, 3), None);
    }

    #[test]
    fn batch_classes_match_naive() {
        for k in 0..=2u32 {
            assert_eq!(unary_classes(k, 10), unary_classes_naive(k, 10), "k={k}");
        }
    }

    #[test]
    fn classes_partition_and_respect_equivalence() {
        let classes = unary_classes(1, 8);
        // Partition: every exponent in exactly one class.
        let mut seen = [false; 9];
        for c in &classes {
            for &n in c {
                assert!(!seen[n], "duplicate exponent {n}");
                seen[n] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Within-class equivalence; cross-class inequivalence of reps.
        for (i, c) in classes.iter().enumerate() {
            for &n in c.iter().skip(1) {
                assert!(unary_equivalent(c[0], n, 1));
            }
            for c2 in classes.iter().skip(i + 1) {
                assert!(!unary_equivalent(c[0], c2[0], 1));
            }
        }
    }

    #[test]
    fn class_count_grows_with_k() {
        let c1 = unary_classes(1, 8).len();
        let c2 = unary_classes(2, 8).len();
        assert!(c2 >= c1, "higher rank distinguishes at least as much");
    }

    #[test]
    fn tail_class_is_cofinite_on_window() {
        // At rank 1 the big exponents coalesce; the tail class fit exists.
        let s = fit_tail_class(1, 10).expect("periodic tail");
        // All large n in the window are members.
        assert!(s.contains(9) && s.contains(10));
    }

    #[test]
    fn pow2_collision_found_at_rank_1() {
        // Within exponents ≤ 10, some rank-1 class contains both a power
        // of two and a non-power — the engine of Lemma 3.6.
        let c = pow2_collision(1, 10).expect("collision");
        assert!(c.len() >= 2);
    }

    #[test]
    fn render_is_reasonable() {
        let classes = unary_classes(0, 3);
        let text = render_classes(&classes);
        assert!(text.contains("class 1"));
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        for k in 0..=2u32 {
            assert_eq!(
                unary_classes_parallel(k, 12, 4),
                unary_classes(k, 12),
                "k={k}"
            );
        }
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        assert_eq!(unary_classes_parallel(1, 8, 1), unary_classes(1, 8));
        assert_eq!(unary_classes_parallel(1, 8, 64), unary_classes(1, 8));
    }
}
