//! Bulk ≡_k workloads: the structure arena and the batch game engine.
//!
//! The drivers behind the paper's quantitative tables — ≡_k class tables
//! over Σ^{≤n} (E24), the Lemma 3.6 minimal-pair scan (E03), the fooling
//! searches of Lemma 4.13 / Lemma 4.15 (E08/E09/E15) — are all *pair
//! grids*: O(n²) games over a window of n words. Solving each pair in
//! isolation rebuilds both words' dense [`FactorStructure`] tables (an
//! O(m²) concat table per word, per pair) and re-decides verdicts the grid
//! already knows. This module amortizes all of that:
//!
//! - [`StructureArena`] interns each distinct word **once** and builds its
//!   structure and its invariant [`Fingerprint`] **lazily**, on the first
//!   pair that actually needs them, sharing the structure via `Arc` across
//!   every pair the word participates in. Interning itself only records
//!   the word and its primitive-root decomposition (O(|w|)), so a batch
//!   whose pairs are all decided arithmetically never builds a structure
//!   at all;
//! - [`BatchSolver`] adds a cross-pair verdict memo (symmetric pairs and
//!   repeat queries are free), an **arithmetic tier** (the process-wide
//!   [`ArithOracle`]: O(1) class-table verdicts for unary and
//!   same-primitive-root pairs, confirming *and* refuting, before any
//!   structure exists), fingerprint-based refutation of inequivalent
//!   pairs *without* entering the game, union-find class merging for
//!   [`BatchSolver::classify`], and a work-stealing parallel pair grid
//!   (`std::thread::scope`) with per-worker solver reuse
//!   ([`EfSolver::rebind`]).
//!
//! Every optimisation is semantically invisible: parallel output equals
//! sequential output (at most one class representative can match a
//! candidate, because representatives are pairwise inequivalent and ≡_k is
//! transitive — Theorem 3.5), fingerprint refutations are debug-asserted
//! against the exact solver, and the differential suite pins
//! `classify == hintikka::classes_naive` on the exhaustive Σ^{≤4} window.
//!
//! All words in one arena share a single alphabet Σ, fixed at
//! construction. Padding Σ with letters absent from both words of a pair
//! does not change ≡_k verdicts: the padded constants interpret as ⊥ on
//! both sides, the extra (⊥, ⊥) constant pairs are consistent (⊥ never
//! participates in R∘ and the equality pattern forces ⊥ ↦ ⊥, which was
//! already Duplicator's only consistent answer to a ⊥ move), so they only
//! pre-pin a move that was trivially answerable. The regression test
//! `alphabet_padding_is_verdict_invariant` pins this.

use crate::arena::GamePair;
use crate::arith::{ArithOracle, PeriodicTable};
use crate::canon;
use crate::fingerprint::{rank2_type_profile, Fingerprint, TYPE2_UNIVERSE_CAP};
use crate::semilinear::fit_tail;
use crate::solver::{EfSolver, SolverStats};
use crate::ttable::{TransTable, TransTableStats, DEFAULT_TABLE_CAPACITY};
use fc_logic::FactorStructure;
use fc_words::{primitive_root, Alphabet, Word};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Index of an interned word within a [`StructureArena`].
pub type WordId = usize;

/// Interns words and builds each word's [`FactorStructure`] and
/// [`Fingerprint`] lazily, at most once, over one shared alphabet.
///
/// Interning records only the word and its primitive-root decomposition;
/// the O(|w|²) structure is built on the first [`StructureArena::structure`]
/// / [`StructureArena::fingerprint`] call (all `OnceLock`, so the arena
/// stays shareable across the parallel grid workers). Pairs decided by the
/// arithmetic tier therefore cost no structure at all.
pub struct StructureArena {
    sigma: Alphabet,
    /// Forced structure backend for every interned word, or `None` for the
    /// per-word automatic choice ([`fc_logic::FactorStructure::new`]).
    backend: Option<fc_logic::BackendKind>,
    words: Vec<Word>,
    structures: Vec<OnceLock<Arc<FactorStructure>>>,
    fingerprints: Vec<OnceLock<Fingerprint>>,
    /// Lazily-memoized rank-2 type profiles (see
    /// [`crate::fingerprint::rank2_type_profile`]): O(|U|²) per word, so
    /// only computed for words whose pairs actually survive the cheap
    /// fingerprint layers.
    rank2: Vec<OnceLock<u64>>,
    /// `(primitive root, exponent)` per word, computed at intern (O(|w|)
    /// border scan) — the arithmetic tier's eligibility data.
    roots: Vec<(Word, usize)>,
    index: HashMap<Word, WordId>,
    structures_built: AtomicU64,
}

impl StructureArena {
    /// An empty arena over the alphabet `sigma`. Every word later interned
    /// must be a word over `sigma` (asserted), so that all structures share
    /// one signature and fingerprints stay comparable.
    pub fn new(sigma: Alphabet) -> StructureArena {
        StructureArena {
            sigma,
            backend: None,
            words: Vec::new(),
            structures: Vec::new(),
            fingerprints: Vec::new(),
            rank2: Vec::new(),
            roots: Vec::new(),
            index: HashMap::new(),
            structures_built: AtomicU64::new(0),
        }
    }

    /// An empty arena that builds every interned word's structure on the
    /// given backend instead of the word-length automatic choice. Verdicts
    /// are backend-independent (the differential suite
    /// `tests/backend_diff.rs` pins `all_pairs` equality), so this is a
    /// performance/memory knob, not a semantic one.
    pub fn with_backend(sigma: Alphabet, backend: fc_logic::BackendKind) -> StructureArena {
        let mut arena = StructureArena::new(sigma);
        arena.backend = Some(backend);
        arena
    }

    /// Builds an arena over the union alphabet of `words` and interns them
    /// all, returning the arena plus one id per input position (duplicate
    /// words share an id).
    pub fn for_words(words: &[Word]) -> (StructureArena, Vec<WordId>) {
        let sigma = words
            .iter()
            .fold(Alphabet::from_symbols(b""), |s, w| s.extended_by(w));
        let mut arena = StructureArena::new(sigma);
        let ids = words.iter().map(|w| arena.intern(w)).collect();
        (arena, ids)
    }

    /// Interns `word`: records it and its primitive-root decomposition.
    /// The structure and fingerprint are *not* built here — they
    /// materialise on first use. Repeat interns are a hash lookup.
    ///
    /// # Panics
    /// Panics if `word` uses a symbol outside the arena's alphabet.
    pub fn intern(&mut self, word: &Word) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        assert!(
            word.bytes().iter().all(|&c| self.sigma.contains(c)),
            "arena alphabet {:?} does not cover word {word}",
            self.sigma
        );
        let id = self.words.len();
        self.roots.push(primitive_root(word.bytes()));
        self.words.push(word.clone());
        self.structures.push(OnceLock::new());
        self.fingerprints.push(OnceLock::new());
        self.rank2.push(OnceLock::new());
        self.index.insert(word.clone(), id);
        id
    }

    /// The interned word.
    pub fn word(&self, id: WordId) -> &Word {
        &self.words[id]
    }

    /// The word as `root^exponent` with `root` primitive (ε ↦ (ε, 0)),
    /// precomputed at intern — no structure involved.
    pub fn primitive_power(&self, id: WordId) -> (&Word, usize) {
        let (root, exp) = &self.roots[id];
        (root, *exp)
    }

    /// The word's shared structure, built on first request.
    pub fn structure(&self, id: WordId) -> &Arc<FactorStructure> {
        self.structures[id].get_or_init(|| {
            self.structures_built.fetch_add(1, Ordering::Relaxed);
            Arc::new(match self.backend {
                Some(kind) => {
                    FactorStructure::with_backend(self.words[id].clone(), &self.sigma, kind)
                }
                None => FactorStructure::new(self.words[id].clone(), &self.sigma),
            })
        })
    }

    /// The word's invariant fingerprint, built (with its structure) on
    /// first request.
    pub fn fingerprint(&self, id: WordId) -> &Fingerprint {
        self.fingerprints[id].get_or_init(|| Fingerprint::of(self.structure(id)))
    }

    /// The word's rank-2 type profile, computed on first request and
    /// memoized; `None` above the `cap` on universe size (the O(|U|²)
    /// pass would cost more than the games it could save on long words —
    /// see [`BatchConfig::rank2_universe_cap`]).
    pub fn rank2_profile(&self, id: WordId, cap: usize) -> Option<u64> {
        let s = self.structure(id);
        if s.universe_len() > cap {
            return None;
        }
        Some(*self.rank2[id].get_or_init(|| rank2_type_profile(s)))
    }

    /// Number of structures actually built so far (≤ words interned).
    pub fn structures_built(&self) -> u64 {
        self.structures_built.load(Ordering::Relaxed)
    }

    /// Number of distinct words interned.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` iff nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The shared alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.sigma
    }

    /// Assembles the game 𝔄_{w_i} vs 𝔅_{w_j} from the shared structures —
    /// two `Arc` bumps plus the constant zip and mirror tables; no factor
    /// table is rebuilt.
    pub fn game(&self, i: WordId, j: WordId) -> GamePair {
        let a = self.structure(i).clone();
        let b = self.structure(j).clone();
        let constant_pairs = a
            .constants_vector()
            .into_iter()
            .zip(b.constants_vector())
            .collect();
        GamePair::from_parts(a, b, constant_pairs)
    }
}

/// Counters exposed by the batch engine for benches and report rows.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Distinct structures built by the arena (each word at most once;
    /// words whose pairs were all decided arithmetically build none).
    pub structures_built: u64,
    /// Pairs *confirmed* equivalent by the arithmetic tier — no structure,
    /// no solver.
    pub arith_confirmations: u64,
    /// Pairs *refuted* by the arithmetic tier — no structure, no solver.
    pub arith_refutations: u64,
    /// Pairs refuted by fingerprint inequality, no solver constructed.
    pub fingerprint_refutations: u64,
    /// Pairs refuted by the lazily-computed rank-2 type profile.
    pub rank2_refutations: u64,
    /// Pairs decided by the exact solver.
    pub pairs_solved: u64,
    /// Queries answered from the cross-pair verdict memo.
    pub memo_hits: u64,
    /// Queries answered from the *canonical* verdict memo — a pair whose
    /// letter-renamed or swapped image was already decided ([`crate::canon`]).
    pub canon_hits: u64,
    /// Entries currently held in the verdict memo.
    pub memo_entries: u64,
    /// Aggregated counters of every solver run by this batch.
    pub solver: SolverStats,
    /// Wall time accumulated inside the batch entry points.
    pub wall: Duration,
}

impl BatchStats {
    /// Folds another batch's counters into this one (wall times add).
    pub fn absorb(&mut self, other: &BatchStats) {
        self.structures_built += other.structures_built;
        self.arith_confirmations += other.arith_confirmations;
        self.arith_refutations += other.arith_refutations;
        self.fingerprint_refutations += other.fingerprint_refutations;
        self.rank2_refutations += other.rank2_refutations;
        self.pairs_solved += other.pairs_solved;
        self.memo_hits += other.memo_hits;
        self.canon_hits += other.canon_hits;
        self.memo_entries += other.memo_entries;
        self.solver.absorb(&other.solver);
        self.wall += other.wall;
    }
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} structures built, {} arith-confirmed, {} arith-refuted, \
             {} fingerprint-refuted, {} rank2-refuted, \
             {} solver-decided, {} memo hits ({} entries), {} canon hits, \
             {} solver states, {} table hits, {:.3?} wall",
            self.structures_built,
            self.arith_confirmations,
            self.arith_refutations,
            self.fingerprint_refutations,
            self.rank2_refutations,
            self.pairs_solved,
            self.memo_hits,
            self.memo_entries,
            self.canon_hits,
            self.solver.states_explored,
            self.solver.table_hits,
            self.wall
        )
    }
}

/// A `Send + Sync` accumulator of [`BatchStats`], for engines whose one
/// shared handle serves concurrent bulk-≡_k requests (`fc serve`).
/// Requests run on private `BatchSolver`s (the existing single-threaded
/// paths, byte-identical displays) and [`SharedBatchStats::record`] their
/// final counters, so concurrent requests never lose updates.
#[derive(Debug, Default)]
pub struct SharedBatchStats {
    batches: AtomicU64,
    structures_built: AtomicU64,
    arith_confirmations: AtomicU64,
    arith_refutations: AtomicU64,
    fingerprint_refutations: AtomicU64,
    rank2_refutations: AtomicU64,
    pairs_solved: AtomicU64,
    memo_hits: AtomicU64,
    canon_hits: AtomicU64,
    solver_states: AtomicU64,
    table_hits: AtomicU64,
    table_misses: AtomicU64,
    wall_nanos: AtomicU64,
}

impl SharedBatchStats {
    /// An all-zero accumulator.
    pub fn new() -> SharedBatchStats {
        SharedBatchStats::default()
    }

    /// Merges one finished batch's counters.
    pub fn record(&self, stats: &BatchStats) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.structures_built
            .fetch_add(stats.structures_built, Ordering::Relaxed);
        self.arith_confirmations
            .fetch_add(stats.arith_confirmations, Ordering::Relaxed);
        self.arith_refutations
            .fetch_add(stats.arith_refutations, Ordering::Relaxed);
        self.fingerprint_refutations
            .fetch_add(stats.fingerprint_refutations, Ordering::Relaxed);
        self.rank2_refutations
            .fetch_add(stats.rank2_refutations, Ordering::Relaxed);
        self.pairs_solved
            .fetch_add(stats.pairs_solved, Ordering::Relaxed);
        self.memo_hits.fetch_add(stats.memo_hits, Ordering::Relaxed);
        self.canon_hits
            .fetch_add(stats.canon_hits, Ordering::Relaxed);
        self.solver_states
            .fetch_add(stats.solver.states_explored, Ordering::Relaxed);
        self.table_hits
            .fetch_add(stats.solver.table_hits, Ordering::Relaxed);
        self.table_misses
            .fetch_add(stats.solver.table_misses, Ordering::Relaxed);
        self.wall_nanos
            .fetch_add(stats.wall.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of batches recorded.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// The accumulated counters as a plain [`BatchStats`] (memo-entry and
    /// per-solver fields other than `states_explored` are zero — they are
    /// per-solver facts, and the solvers are gone).
    pub fn snapshot(&self) -> BatchStats {
        BatchStats {
            structures_built: self.structures_built.load(Ordering::Relaxed),
            arith_confirmations: self.arith_confirmations.load(Ordering::Relaxed),
            arith_refutations: self.arith_refutations.load(Ordering::Relaxed),
            fingerprint_refutations: self.fingerprint_refutations.load(Ordering::Relaxed),
            rank2_refutations: self.rank2_refutations.load(Ordering::Relaxed),
            pairs_solved: self.pairs_solved.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            canon_hits: self.canon_hits.load(Ordering::Relaxed),
            memo_entries: 0,
            solver: SolverStats {
                states_explored: self.solver_states.load(Ordering::Relaxed),
                table_hits: self.table_hits.load(Ordering::Relaxed),
                table_misses: self.table_misses.load(Ordering::Relaxed),
                ..SolverStats::default()
            },
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Tuning knobs for a [`BatchSolver`].
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Refute pairs by fingerprint before constructing a solver. Disabling
    /// this never changes verdicts (the filter is sound); it exists for
    /// the ablation benches.
    pub use_fingerprints: bool,
    /// Additionally consult the lazily-memoized rank-2 type profile
    /// (requires `use_fingerprints`). Sound at every rank ≥ 2 and never
    /// changes verdicts, but the O(|U|²) per-word pass only *pays* when
    /// individual games are expensive relative to the window — the unary
    /// scans and fooling searches enable it; small-word window classify
    /// keeps it off because there the games are cheaper than the profile.
    pub use_rank2_profiles: bool,
    /// Universe-size cap for the rank-2 profile pass. The conservative
    /// default [`TYPE2_UNIVERSE_CAP`] protects window classifies, but on
    /// the fooling searches (E08/E09) the games the profile saves are so
    /// expensive that the pass pays far beyond it — those sites raise the
    /// cap to 512.
    pub rank2_universe_cap: usize,
    /// Consult the arithmetic oracle ([`ArithOracle`]) before any
    /// structure or fingerprint exists: unary pairs `aᵖ` vs `a^q` (rank-3
    /// only from an already-warm table) and same-primitive-root pairs are
    /// confirmed *or* refuted in O(1) from semilinear class tables.
    /// Sound by the brute/solver audits (`arith_diff.rs` and the tier's
    /// own debug assertion); disabling it never changes verdicts.
    pub use_arith: bool,
    /// Let the arithmetic tier *build* solver-backed exponent tables for
    /// non-unary primitive roots ([`PeriodicTable`]). Off by default: the
    /// build is itself a classify over `u^0..u^window`, worth paying only
    /// for callers that replay many exponent pairs of one root (`fc game
    /// --fast`, the serve warm paths). Already-built tables are consulted
    /// either way.
    pub arith_periodic: bool,
    /// Threads for the *inner* per-pair solver: `1` = sequential search,
    /// `0` = `equivalent_auto` (one worker per CPU). Grid-level
    /// parallelism is chosen per call site instead (`*_par` methods).
    pub solver_threads: usize,
    /// Slot budget of the shared transposition table every solver this
    /// batch runs feeds ([`crate::ttable::TransTable`]). The table is
    /// bounded (generational eviction), so this is a memory ceiling, not
    /// a growth rate.
    pub table_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            use_fingerprints: true,
            use_rank2_profiles: false,
            rank2_universe_cap: TYPE2_UNIVERSE_CAP,
            use_arith: true,
            arith_periodic: false,
            solver_threads: 1,
            table_capacity: DEFAULT_TABLE_CAPACITY >> 2,
        }
    }
}

/// A memoizing bulk ≡_k engine over one [`StructureArena`].
pub struct BatchSolver {
    arena: StructureArena,
    config: BatchConfig,
    /// `(min id, max id, k) → verdict`; queries are canonicalised, so the
    /// symmetric half of any grid is free.
    verdicts: HashMap<(WordId, WordId, u32), bool>,
    /// L2 verdict memo keyed by the *canonical* pair ([`crate::canon`]):
    /// letter-renamed and swapped images of a solved pair are free. Exact
    /// (full canonical words in the key), unlike the hashed table below.
    canon_verdicts: HashMap<(Box<[u8]>, u32), bool>,
    /// The transposition table shared by every solver this batch runs
    /// (tier 4: probed at the canonical root before the exact search, fed
    /// by every search). May be shared with an outer engine (`fc serve`).
    table: Arc<TransTable>,
    stats: BatchStats,
}

impl BatchSolver {
    /// A batch solver with the default configuration.
    pub fn new(arena: StructureArena) -> BatchSolver {
        BatchSolver::with_config(arena, BatchConfig::default())
    }

    /// A batch solver with explicit tuning.
    pub fn with_config(arena: StructureArena, config: BatchConfig) -> BatchSolver {
        let table = Arc::new(TransTable::new(config.table_capacity));
        BatchSolver {
            arena,
            config,
            verdicts: HashMap::new(),
            canon_verdicts: HashMap::new(),
            table,
            stats: BatchStats::default(),
        }
    }

    /// Replaces the batch's transposition table with an externally shared
    /// one (e.g. `fc serve`'s per-engine table), so verdict states persist
    /// beyond this batch's lifetime.
    pub fn share_table(&mut self, table: Arc<TransTable>) {
        self.table = table;
    }

    /// The shared transposition table's own counters (hits, misses,
    /// inserts, evictions, capacity).
    pub fn table_stats(&self) -> TransTableStats {
        self.table.stats()
    }

    /// The underlying arena.
    pub fn arena(&self) -> &StructureArena {
        &self.arena
    }

    /// Interns a word into the arena (see [`StructureArena::intern`]).
    pub fn intern(&mut self, word: &Word) -> WordId {
        self.arena.intern(word)
    }

    /// Counters snapshot (memo entry count taken at call time).
    pub fn stats(&self) -> BatchStats {
        let mut s = self.stats;
        s.structures_built = self.arena.structures_built();
        s.memo_entries = self.verdicts.len() as u64;
        s
    }

    /// Decides `w_i ≡_k w_j` through the memo → fingerprint → solver
    /// cascade.
    pub fn equivalent(&mut self, i: WordId, j: WordId, k: u32) -> bool {
        let t0 = Instant::now();
        let verdict = self.verdict(i, j, k);
        self.stats.wall += t0.elapsed();
        verdict
    }

    /// [`BatchSolver::equivalent`] without the wall-clock bookkeeping —
    /// the internal hot path shared by the grid drivers.
    fn verdict(&mut self, i: WordId, j: WordId, k: u32) -> bool {
        if i == j {
            return true; // reflexivity (identical structure on both sides)
        }
        let key = (i.min(j), i.max(j), k);
        if let Some(&v) = self.verdicts.get(&key) {
            self.stats.memo_hits += 1;
            return v;
        }
        if let Some(eq) = self.arith_verdict(i, j, k) {
            if eq {
                self.stats.arith_confirmations += 1;
            } else {
                self.stats.arith_refutations += 1;
            }
            self.verdicts.insert(key, eq);
            return eq;
        }
        if self.config.use_fingerprints {
            let refuted = if self
                .arena
                .fingerprint(i)
                .refutes(self.arena.fingerprint(j), k)
            {
                self.stats.fingerprint_refutations += 1;
                true
            } else if self.config.use_rank2_profiles && k >= 2 {
                let cap = self.config.rank2_universe_cap;
                match (
                    self.arena.rank2_profile(i, cap),
                    self.arena.rank2_profile(j, cap),
                ) {
                    (Some(a), Some(b)) if a != b => {
                        self.stats.rank2_refutations += 1;
                        true
                    }
                    _ => false,
                }
            } else {
                false
            };
            if refuted {
                // Differential path: a refutation by any invariant layer
                // must agree with the exact solver — an unsound invariant
                // is a correctness bug, not a missed optimisation.
                debug_assert!(
                    !EfSolver::new(self.arena.game(i, j)).equivalent(k),
                    "fingerprint unsoundness: {} vs {} wrongly refuted at k={k}",
                    self.arena.word(i),
                    self.arena.word(j),
                );
                self.verdicts.insert(key, false);
                return false;
            }
        }
        // Tier 4: the canonical layers. First the exact canonical memo
        // (letter-renamed / swapped images of an already-decided pair),
        // then a root probe of the shared transposition table under the
        // canonical fingerprint — a hit solves the pair without a game.
        let canon_key = self.canon_key_of(key.0, key.1, k);
        if let Some(ck) = &canon_key {
            if let Some(&v) = self.canon_verdicts.get(ck) {
                self.stats.canon_hits += 1;
                self.verdicts.insert(key, v);
                return v;
            }
        }
        let root_fp = self.root_fp_of(key.0, key.1, k);
        if let Some(fp) = root_fp {
            if let Some(v) = self.table.probe_root(fp, k) {
                self.stats.solver.table_hits += 1;
                // Differential path (the arith-tier discipline): the root
                // entry identifies the canonical pair by a hash tag, so on
                // small instances replay the game and pin any collision.
                #[cfg(debug_assertions)]
                if k <= 2
                    && self.arena.word(key.0).len() <= 48
                    && self.arena.word(key.1).len() <= 48
                {
                    let direct = EfSolver::new(self.arena.game(key.0, key.1)).equivalent(k);
                    assert_eq!(
                        direct,
                        v,
                        "table root verdict diverged: {} vs {} at k={k}",
                        self.arena.word(key.0),
                        self.arena.word(key.1),
                    );
                }
                if let Some(ck) = canon_key {
                    self.canon_verdicts.insert(ck, v);
                }
                self.verdicts.insert(key, v);
                return v;
            }
            self.stats.solver.table_misses += 1;
        }
        let mut solver =
            EfSolver::new(self.arena.game(key.0, key.1)).with_table(Arc::clone(&self.table));
        let verdict = match self.config.solver_threads {
            0 => solver.equivalent_auto(k),
            1 => solver.equivalent(k),
            t => solver.equivalent_par(k, t),
        };
        self.stats.pairs_solved += 1;
        self.stats.solver.absorb(&solver.stats());
        self.stats.solver.wall += solver.stats().wall;
        if let Some(fp) = root_fp {
            self.table.insert_root(fp, k, verdict);
        }
        if let Some(ck) = canon_key {
            self.canon_verdicts.insert(ck, verdict);
        }
        self.verdicts.insert(key, verdict);
        verdict
    }

    /// The canonical memo key of a pair at rank `k` (`None` above the
    /// canonicalizer's alphabet cap — the pair simply loses L2 sharing).
    fn canon_key_of(&self, i: WordId, j: WordId, k: u32) -> Option<(Box<[u8]>, u32)> {
        canon::canonical_key(self.arena.word(i).bytes(), self.arena.word(j).bytes())
            .map(|ck| (ck, k))
    }

    /// The canonical root fingerprint of a pair for transposition-table
    /// root entries.
    fn root_fp_of(&self, i: WordId, j: WordId, k: u32) -> Option<u64> {
        canon::root_fingerprint(self.arena.word(i).bytes(), self.arena.word(j).bytes(), k)
    }

    /// Partitions the positions of `items` into ≡_k classes. Classes are
    /// ordered by first member; members keep input order (the exact output
    /// contract of the naive representative loop it replaces). Duplicate
    /// ids are free; cross-fingerprint pairs never reach the solver.
    pub fn classify(&mut self, items: &[WordId], k: u32) -> Vec<Vec<usize>> {
        let t0 = Instant::now();
        let mut dsu = Dsu::new(items.len());
        let mut reps: Vec<usize> = Vec::new();
        'next: for pos in 0..items.len() {
            for rep in reps.iter().copied() {
                if self.verdict(items[rep], items[pos], k) {
                    dsu.union(rep, pos);
                    continue 'next;
                }
            }
            reps.push(pos);
        }
        let out = dsu.classes_by_first_member();
        self.stats.wall += t0.elapsed();
        out
    }

    /// [`BatchSolver::classify`] with the solver calls of each candidate's
    /// representative scan fanned out over `threads` workers. Output is
    /// byte-identical to the sequential partition: the wave only *solves*
    /// the missing (candidate, representative) verdicts in parallel, and
    /// at most one representative can match (reps are pairwise
    /// inequivalent, ≡_k is transitive), so the sequential merge that
    /// follows is deterministic.
    pub fn classify_par(&mut self, items: &[WordId], k: u32, threads: usize) -> Vec<Vec<usize>> {
        let t0 = Instant::now();
        let threads = threads.max(1);
        let mut dsu = Dsu::new(items.len());
        let mut reps: Vec<usize> = Vec::new();
        'next: for pos in 0..items.len() {
            // Pre-solve this candidate's unresolved rep comparisons in
            // parallel; memo and fingerprints keep the job list short.
            let jobs: Vec<(WordId, WordId)> = reps
                .iter()
                .map(|&rep| (items[rep], items[pos]))
                .filter(|&(a, b)| self.needs_solver(a, b, k))
                .collect();
            self.solve_jobs_parallel(&jobs, k, threads);
            for rep in reps.iter().copied() {
                if self.verdict(items[rep], items[pos], k) {
                    dsu.union(rep, pos);
                    continue 'next;
                }
            }
            reps.push(pos);
        }
        let out = dsu.classes_by_first_member();
        self.stats.wall += t0.elapsed();
        out
    }

    /// The full verdict matrix over the positions of `items`: only the
    /// upper triangle is solved, the diagonal is reflexivity, the lower
    /// half is mirrored.
    pub fn all_pairs(&mut self, items: &[WordId], k: u32) -> Vec<Vec<bool>> {
        let t0 = Instant::now();
        let out = self.fill_matrix(items, k);
        self.stats.wall += t0.elapsed();
        out
    }

    /// [`BatchSolver::all_pairs`] with the unresolved upper-triangle pairs
    /// solved by a work-stealing worker pool (same verdicts, same matrix).
    pub fn all_pairs_par(&mut self, items: &[WordId], k: u32, threads: usize) -> Vec<Vec<bool>> {
        let t0 = Instant::now();
        let mut jobs: Vec<(WordId, WordId)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (p, &a) in items.iter().enumerate() {
            for &b in items.iter().skip(p + 1) {
                let key = (a.min(b), a.max(b));
                if self.needs_solver(a, b, k) && seen.insert(key) {
                    jobs.push(key);
                }
            }
        }
        self.solve_jobs_parallel(&jobs, k, threads.max(1));
        let out = self.fill_matrix(items, k);
        self.stats.wall += t0.elapsed();
        out
    }

    fn fill_matrix(&mut self, items: &[WordId], k: u32) -> Vec<Vec<bool>> {
        let n = items.len();
        let mut eq = vec![vec![false; n]; n];
        for i in 0..n {
            eq[i][i] = true;
            for j in i + 1..n {
                let v = self.verdict(items[i], items[j], k);
                eq[i][j] = v;
                eq[j][i] = v;
            }
        }
        eq
    }

    /// The first pair (in the given order) that *is* ≡_k, as an index into
    /// `pairs` — the shape of the E03 minimal-pair scan and the fooling
    /// searches, where the scan order is the result's definition.
    pub fn find_first_equivalent(&mut self, pairs: &[(WordId, WordId)], k: u32) -> Option<usize> {
        let t0 = Instant::now();
        let hit = (0..pairs.len()).find(|&idx| self.verdict(pairs[idx].0, pairs[idx].1, k));
        self.stats.wall += t0.elapsed();
        hit
    }

    /// The first pair (in the given order) that is *not* ≡_k.
    pub fn find_first_inequivalent(&mut self, pairs: &[(WordId, WordId)], k: u32) -> Option<usize> {
        let t0 = Instant::now();
        let hit = (0..pairs.len()).find(|&idx| !self.verdict(pairs[idx].0, pairs[idx].1, k));
        self.stats.wall += t0.elapsed();
        hit
    }

    /// The arithmetic tier: O(1) verdicts for unary and same-primitive-root
    /// pairs from the process-wide [`ArithOracle`] class tables, before
    /// any structure or fingerprint exists. `None` when the pair is not
    /// eligible (distinct primitive roots) or the oracle declines (rank
    /// above its tables; periodic route disabled or outside its window).
    ///
    /// Rank-3 unary verdicts are served only from an *already-warm* table
    /// ([`ArithOracle::unary_table_ready`]) — a bulk query must not hide
    /// the multi-second rank-3 build behind one pair.
    fn arith_verdict(&self, i: WordId, j: WordId, k: u32) -> Option<bool> {
        if !self.config.use_arith {
            return None;
        }
        // Eligibility pre-filter on the interned roots: different
        // primitive roots (with neither side ε) can never reach a table.
        let (ri, _) = self.arena.primitive_power(i);
        let (rj, _) = self.arena.primitive_power(j);
        let (wi, wj) = (self.arena.word(i), self.arena.word(j));
        if ri != rj && !wi.bytes().is_empty() && !wj.bytes().is_empty() {
            return None;
        }
        let periodic = self.config.arith_periodic;
        let max_len = wi.bytes().len().max(wj.bytes().len());
        let verdict =
            ArithOracle::global().verdict_words(wi.bytes(), wj.bytes(), k, false, |root| {
                if !periodic {
                    return None;
                }
                // Window past both queried exponents, with tail margin.
                let window = (max_len / root.bytes().len()) as u64 + 8;
                periodic_table_builder(k, root, window.max(16))
            })?;
        let eq = verdict.equivalent;
        // Differential path: on instances small enough for the exact
        // solver, an arithmetic verdict must agree with it — disagreement
        // is a correctness bug, not a missed optimisation. (Direct
        // GamePair construction, not `arena.game`, so debug builds keep
        // the arena's laziness observable.)
        #[cfg(debug_assertions)]
        if k <= 2 && wi.bytes().len() <= 48 && wj.bytes().len() <= 48 {
            let direct =
                EfSolver::new(GamePair::new(wi.clone(), wj.clone(), self.arena.alphabet()))
                    .equivalent(k);
            assert_eq!(
                direct, eq,
                "arith tier unsoundness: {wi} vs {wj} at k={k} (route {:?})",
                verdict.route
            );
        }
        Some(eq)
    }

    /// `true` iff the verdict for (a, b) at rank k is not already decided
    /// by identity, memo, the arithmetic tier, or fingerprint.
    fn needs_solver(&self, a: WordId, b: WordId, k: u32) -> bool {
        if a == b {
            return false;
        }
        let key = (a.min(b), a.max(b), k);
        if self.verdicts.contains_key(&key) {
            return false;
        }
        if let Some(ck) = self.canon_key_of(key.0, key.1, k) {
            if self.canon_verdicts.contains_key(&ck) {
                return false;
            }
        }
        if self.arith_verdict(a, b, k).is_some() {
            return false;
        }
        if !self.config.use_fingerprints {
            return true;
        }
        if self
            .arena
            .fingerprint(a)
            .refutes(self.arena.fingerprint(b), k)
        {
            return false;
        }
        if self.config.use_rank2_profiles && k >= 2 {
            let cap = self.config.rank2_universe_cap;
            if let (Some(pa), Some(pb)) = (
                self.arena.rank2_profile(a, cap),
                self.arena.rank2_profile(b, cap),
            ) {
                return pa == pb;
            }
        }
        true
    }

    /// Solves the given canonical, deduplicated jobs on a work-stealing
    /// worker pool and merges the verdicts into the memo. Workers pop
    /// fixed-size chunks off a shared atomic cursor; each worker owns one
    /// [`EfSolver`] that is [`EfSolver::rebind`]-reused across its pairs,
    /// so memo-table allocations amortize within a worker.
    fn solve_jobs_parallel(&mut self, jobs: &[(WordId, WordId)], k: u32, threads: usize) {
        if jobs.is_empty() {
            return;
        }
        let threads = threads.min(jobs.len());
        if threads <= 1 {
            for &(a, b) in jobs {
                let _ = self.verdict(a, b, k);
            }
            return;
        }
        const CHUNK: usize = 4;
        let arena = &self.arena;
        let solver_threads = self.config.solver_threads;
        let table = &self.table;
        let cursor = AtomicUsize::new(0);
        let mut merged: Vec<(usize, bool)> = Vec::with_capacity(jobs.len());
        let mut solver_stats = SolverStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, bool)> = Vec::new();
                        let mut worker: Option<EfSolver> = None;
                        loop {
                            let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if start >= jobs.len() {
                                break;
                            }
                            let end = (start + CHUNK).min(jobs.len());
                            for (off, &(a, b)) in jobs[start..end].iter().enumerate() {
                                let game = arena.game(a, b);
                                let solver = match worker.as_mut() {
                                    Some(s) => {
                                        s.rebind(game);
                                        s
                                    }
                                    None => worker
                                        .insert(EfSolver::new(game).with_table(Arc::clone(table))),
                                };
                                let verdict = match solver_threads {
                                    0 | 1 => solver.equivalent(k),
                                    t => solver.equivalent_par(k, t),
                                };
                                out.push((start + off, verdict));
                            }
                        }
                        (out, worker.map(|s| s.stats()).unwrap_or_default())
                    })
                })
                .collect();
            for handle in handles {
                let (out, stats) = handle.join().expect("batch worker panicked");
                merged.extend(out);
                solver_stats.absorb(&stats);
                solver_stats.wall += stats.wall;
            }
        });
        for (idx, verdict) in merged {
            let (a, b) = jobs[idx];
            let (lo, hi) = (a.min(b), a.max(b));
            self.verdicts.insert((lo, hi, k), verdict);
            if let Some(ck) = self.canon_key_of(lo, hi, k) {
                self.canon_verdicts.insert(ck, verdict);
            }
            if let Some(fp) = self.root_fp_of(lo, hi, k) {
                self.table.insert_root(fp, k, verdict);
            }
            self.stats.pairs_solved += 1;
        }
        self.stats.solver.absorb(&solver_stats);
        self.stats.solver.wall += solver_stats.wall;
    }
}

/// Classifies `root⁰..root^window` with the exact batch solver (one shared
/// arena, arithmetic tier off — the build must not re-enter the oracle it
/// is building for) and fits the tail: the solver-backed builder behind
/// [`ArithOracle::periodic_table`]. Every in-window verdict the resulting
/// [`PeriodicTable`] serves is a cached exact-solver verdict, so the table
/// is unconditionally sound; the fitted tail is display-only.
pub fn periodic_table_builder(k: u32, root: &Word, window: u64) -> Option<PeriodicTable> {
    if root.bytes().is_empty() {
        return None;
    }
    let words: Vec<Word> = (0..=window).map(|e| root.pow(e as usize)).collect();
    let (arena, ids) = StructureArena::for_words(&words);
    let mut batch = BatchSolver::with_config(
        arena,
        BatchConfig {
            use_rank2_profiles: true,
            use_arith: false,
            ..BatchConfig::default()
        },
    );
    let classes = batch.classify(&ids, k);
    let mut class_of = vec![0u32; ids.len()];
    for (ci, members) in classes.iter().enumerate() {
        for &pos in members {
            class_of[pos] = ci as u32;
        }
    }
    let as_hashes: Vec<u128> = class_of.iter().map(|&c| c as u128).collect();
    Some(PeriodicTable {
        k,
        root: root.clone(),
        window,
        class_of,
        tail: fit_tail(&as_hashes),
    })
}

/// Minimal union-find over `0..n` with path halving; classes are read back
/// in first-member order so the partition matches the representative loop
/// it replaces.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges keeping the smaller root (so roots stay first members).
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }

    /// The partition as position lists: classes ordered by their first
    /// member, members ascending (== input order).
    fn classes_by_first_member(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: HashMap<usize, usize> = HashMap::new();
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for pos in 0..n {
            let root = self.find(pos);
            let slot = *by_root.entry(root).or_insert_with(|| {
                classes.push(Vec::new());
                classes.len() - 1
            });
            classes[slot].push(pos);
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(max_len: usize) -> Vec<Word> {
        Alphabet::ab().words_up_to(max_len).collect()
    }

    #[test]
    fn arena_interns_each_word_once_and_builds_lazily() {
        let words = vec![Word::from("ab"), Word::from("ba"), Word::from("ab")];
        let (arena, ids) = StructureArena::for_words(&words);
        assert_eq!(arena.len(), 2);
        assert_eq!(ids, vec![0, 1, 0]);
        assert_eq!(arena.word(0).as_str(), "ab");
        // Interning alone builds nothing; first touches build each once.
        assert_eq!(arena.structures_built(), 0);
        let first = Arc::as_ptr(arena.structure(0));
        let _ = arena.fingerprint(0);
        let _ = arena.fingerprint(1);
        assert_eq!(
            Arc::as_ptr(arena.structure(0)),
            first,
            "shared, not rebuilt"
        );
        assert_eq!(arena.structures_built(), 2);
    }

    #[test]
    fn arena_precomputes_primitive_powers() {
        let words = vec![Word::from("abab"), Word::from("aaa"), Word::from("")];
        let (arena, ids) = StructureArena::for_words(&words);
        assert_eq!(arena.primitive_power(ids[0]), (&Word::from("ab"), 2));
        assert_eq!(arena.primitive_power(ids[1]), (&Word::from("a"), 3));
        assert_eq!(arena.primitive_power(ids[2]).1, 0);
        assert_eq!(arena.structures_built(), 0);
    }

    #[test]
    fn arena_game_matches_direct_construction() {
        let words = vec![Word::from("abaab"), Word::from("aab")];
        let (arena, ids) = StructureArena::for_words(&words);
        let g = arena.game(ids[0], ids[1]);
        let direct = GamePair::new(words[0].clone(), words[1].clone(), arena.alphabet());
        assert_eq!(g.constant_pairs, direct.constant_pairs);
        for k in 0..=2 {
            assert_eq!(
                EfSolver::new(g.clone()).equivalent(k),
                EfSolver::new(direct.clone()).equivalent(k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn arena_rejects_foreign_symbols() {
        let mut arena = StructureArena::new(Alphabet::ab());
        arena.intern(&Word::from("abc"));
    }

    #[test]
    fn batch_verdicts_match_per_pair_solver() {
        let words = window(3);
        let (arena, ids) = StructureArena::for_words(&words);
        let sigma = arena.alphabet().clone();
        let mut batch = BatchSolver::new(arena);
        for (p, w) in words.iter().enumerate() {
            for (q, v) in words.iter().enumerate() {
                for k in 0..=2u32 {
                    let direct =
                        EfSolver::new(GamePair::new(w.clone(), v.clone(), &sigma)).equivalent(k);
                    assert_eq!(
                        batch.equivalent(ids[p], ids[q], k),
                        direct,
                        "w={w} v={v} k={k}"
                    );
                }
            }
        }
        let stats = batch.stats();
        assert!(stats.fingerprint_refutations > 0, "filter should fire");
        assert!(stats.memo_hits > 0, "symmetric half should be free");
        assert!(stats.pairs_solved > 0);
        assert!(
            stats.arith_confirmations + stats.arith_refutations > 0,
            "the window's unary pairs should be decided arithmetically"
        );
        assert!(stats.structures_built <= words.len() as u64);
    }

    #[test]
    fn classify_matches_representative_loop_semantics() {
        let words = vec![
            Word::from("a"),
            Word::from("aa"),
            Word::from("b"),
            Word::from("ab"),
            Word::from("ba"),
        ];
        let (arena, ids) = StructureArena::for_words(&words);
        let mut batch = BatchSolver::new(arena);
        // Rank 0 groups by occurring-letter set: {a, aa}, {b}, {ab, ba}.
        let classes = batch.classify(&ids, 0);
        assert_eq!(classes, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn classify_par_equals_sequential() {
        let words = window(3);
        for k in 0..=2u32 {
            let (arena, ids) = StructureArena::for_words(&words);
            let mut seq = BatchSolver::new(arena);
            let expect = seq.classify(&ids, k);
            for threads in [1usize, 2, 3, 7] {
                let (arena, ids) = StructureArena::for_words(&words);
                let mut par = BatchSolver::new(arena);
                assert_eq!(
                    par.classify_par(&ids, k, threads),
                    expect,
                    "k={k} t={threads}"
                );
            }
        }
    }

    #[test]
    fn all_pairs_par_equals_sequential_and_is_symmetric() {
        let words = window(3);
        let (arena, ids) = StructureArena::for_words(&words);
        let mut seq = BatchSolver::new(arena);
        let expect = seq.all_pairs(&ids, 1);
        for (i, row) in expect.iter().enumerate() {
            assert!(row[i], "diagonal");
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, expect[j][i], "symmetry");
            }
        }
        for threads in [2usize, 5] {
            let (arena, ids) = StructureArena::for_words(&words);
            let mut par = BatchSolver::new(arena);
            assert_eq!(par.all_pairs_par(&ids, 1, threads), expect);
        }
    }

    #[test]
    fn fingerprint_ablation_is_verdict_invariant() {
        let words = window(3);
        let (arena, ids) = StructureArena::for_words(&words);
        let mut with_fp = BatchSolver::new(arena);
        let (arena2, ids2) = StructureArena::for_words(&words);
        let mut without_fp = BatchSolver::with_config(
            arena2,
            BatchConfig {
                use_fingerprints: false,
                use_rank2_profiles: false,
                use_arith: false,
                ..BatchConfig::default()
            },
        );
        for k in 0..=2u32 {
            assert_eq!(with_fp.classify(&ids, k), without_fp.classify(&ids2, k));
        }
        assert_eq!(without_fp.stats().fingerprint_refutations, 0);
        assert!(with_fp.stats().fingerprint_refutations > 0);
        assert!(with_fp.stats().pairs_solved < without_fp.stats().pairs_solved);
    }

    #[test]
    fn find_first_scans_respect_order() {
        let words: Vec<Word> = (0..=6).map(|n| Word::from("a").pow(n)).collect();
        let (arena, ids) = StructureArena::for_words(&words);
        let mut batch = BatchSolver::new(arena);
        // (p, q) pairs ordered by (q, p), exponents ≥ 1 — the E03 scan.
        let mut pairs = Vec::new();
        let mut exps = Vec::new();
        for q in 1..=6usize {
            for p in 1..q {
                pairs.push((ids[p], ids[q]));
                exps.push((p, q));
            }
        }
        let hit = batch.find_first_equivalent(&pairs, 1).expect("rank-1 pair");
        assert_eq!(exps[hit], (3, 4), "minimal rank-1 unary pair");
        // And the first inequivalent pair is the very first probed.
        assert_eq!(batch.find_first_inequivalent(&pairs, 1), Some(0));
    }

    #[test]
    fn arith_tier_decides_unary_batches_without_structures() {
        // A purely unary batch is decided entirely by the semilinear
        // class tables: zero structures, zero solver runs.
        let words: Vec<Word> = (0..=20).map(|n| Word::from("a").pow(n)).collect();
        let (arena, ids) = StructureArena::for_words(&words);
        let mut batch = BatchSolver::new(arena);
        for k in 0..=2u32 {
            let classes = batch.classify(&ids, k);
            let table = crate::arith::unary_class_table(k, crate::arith::default_window(k))
                .expect("unary table");
            // Class partition must match the table's (first-member order).
            let mut expect: Vec<Vec<usize>> = Vec::new();
            let mut rep_class: Vec<u32> = Vec::new();
            for n in 0..=20u64 {
                let c = table.class_index(n);
                match rep_class.iter().position(|&r| r == c) {
                    Some(slot) => expect[slot].push(n as usize),
                    None => {
                        rep_class.push(c);
                        expect.push(vec![n as usize]);
                    }
                }
            }
            assert_eq!(classes, expect, "k={k}");
        }
        let stats = batch.stats();
        assert_eq!(stats.structures_built, 0, "no structure should be built");
        assert_eq!(stats.pairs_solved, 0, "no game should be played");
        assert!(stats.arith_confirmations > 0 && stats.arith_refutations > 0);
    }

    #[test]
    fn arith_ablation_is_verdict_invariant() {
        // Mixed window: unary, periodic, and aperiodic words. Turning the
        // arithmetic tier off must not change a single verdict.
        let words = window(3);
        for k in 0..=2u32 {
            let (arena, ids) = StructureArena::for_words(&words);
            let mut with_arith = BatchSolver::new(arena);
            let (arena2, ids2) = StructureArena::for_words(&words);
            let mut without_arith = BatchSolver::with_config(
                arena2,
                BatchConfig {
                    use_arith: false,
                    ..BatchConfig::default()
                },
            );
            assert_eq!(
                with_arith.all_pairs(&ids, k),
                without_arith.all_pairs(&ids2, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn periodic_builder_matches_solver_and_fits_tail() {
        let root = Word::from("ab");
        let table = periodic_table_builder(1, &root, 16).expect("builder");
        for p in 0..=16u64 {
            for q in 0..=16u64 {
                let direct = EfSolver::new(GamePair::of(
                    root.pow(p as usize).as_str(),
                    root.pow(q as usize).as_str(),
                ))
                .equivalent(1);
                assert_eq!(table.verdict(p, q), Some(direct), "p={p} q={q}");
            }
        }
        assert_eq!(table.verdict(3, 17), None, "outside the window: decline");
        assert!(table.tail.is_some(), "(ab)^n classes stabilise quickly");
    }

    #[test]
    fn arith_periodic_route_confirms_same_root_pairs() {
        let words = vec![Word::from("abababab"), Word::from("ababababab")];
        let (arena, ids) = StructureArena::for_words(&words);
        let mut batch = BatchSolver::with_config(
            arena,
            BatchConfig {
                arith_periodic: true,
                ..BatchConfig::default()
            },
        );
        let verdict = batch.equivalent(ids[0], ids[1], 1);
        let direct = EfSolver::new(GamePair::of("abababab", "ababababab")).equivalent(1);
        assert_eq!(verdict, direct);
        let stats = batch.stats();
        assert_eq!(stats.arith_confirmations + stats.arith_refutations, 1);
        assert_eq!(stats.structures_built, 0, "decided without structures");
    }

    #[test]
    fn canonical_tier_collapses_renamed_and_swapped_pairs() {
        // (aabb, abab), (bbaa, baba) [letter swap], (abab, aabb) [argument
        // swap] share one canonical pair: after the first is solved, the
        // others are canon-memo hits — no extra game, no extra structure
        // beyond the words themselves.
        let words = vec![
            Word::from("aabb"),
            Word::from("abab"),
            Word::from("bbaa"),
            Word::from("baba"),
        ];
        let (arena, ids) = StructureArena::for_words(&words);
        let sigma = arena.alphabet().clone();
        // Fingerprints off so the (inequivalent) pairs actually reach the
        // canonical tier instead of being refuted upstream — the tier must
        // collapse refutations just as well as confirmations.
        let mut batch = BatchSolver::with_config(
            arena,
            BatchConfig {
                use_fingerprints: false,
                use_arith: false,
                ..BatchConfig::default()
            },
        );
        let first = batch.equivalent(ids[0], ids[1], 2);
        let solved_after_first = batch.stats().pairs_solved;
        let renamed = batch.equivalent(ids[2], ids[3], 2);
        let swapped = batch.equivalent(ids[1], ids[0], 2);
        assert_eq!(first, renamed);
        assert_eq!(first, swapped);
        let stats = batch.stats();
        assert_eq!(
            stats.pairs_solved, solved_after_first,
            "renamed/swapped pairs must not reach the solver"
        );
        assert!(stats.canon_hits >= 1, "canonical memo should fire");
        // And the collapsed verdicts are the true ones.
        let direct =
            EfSolver::new(GamePair::new(words[2].clone(), words[3].clone(), &sigma)).equivalent(2);
        assert_eq!(renamed, direct);
    }

    #[test]
    fn shared_table_persists_across_batches() {
        // An engine-owned table outlives one batch: a second batch over
        // the same pair starts with the root verdict already present.
        let table = Arc::new(TransTable::new(1 << 12));
        let words = vec![Word::from("aabb"), Word::from("abab")];
        let config = BatchConfig {
            use_fingerprints: false,
            use_arith: false,
            ..BatchConfig::default()
        };
        let (arena, ids) = StructureArena::for_words(&words);
        let mut first = BatchSolver::with_config(arena, config);
        first.share_table(Arc::clone(&table));
        let v1 = first.equivalent(ids[0], ids[1], 2);
        assert_eq!(first.stats().pairs_solved, 1);
        let (arena2, ids2) = StructureArena::for_words(&words);
        let mut second = BatchSolver::with_config(arena2, config);
        second.share_table(Arc::clone(&table));
        let v2 = second.equivalent(ids2[0], ids2[1], 2);
        assert_eq!(v1, v2);
        assert_eq!(
            second.stats().pairs_solved,
            0,
            "the shared table's root entry must decide the repeat pair"
        );
        assert!(second.stats().solver.table_hits >= 1);
    }

    #[test]
    fn alphabet_padding_is_verdict_invariant() {
        // Σ padded with letters absent from *both* words must not change
        // any verdict — this is what lets one arena serve a whole window.
        let words = window(3);
        let padded = Alphabet::abc(); // 'c' occurs in no window word
        for w in &words {
            for v in &words {
                for k in 0..=2u32 {
                    let joint = EfSolver::new(GamePair::of(w.as_str(), v.as_str())).equivalent(k);
                    let wide =
                        EfSolver::new(GamePair::new(w.clone(), v.clone(), &padded)).equivalent(k);
                    assert_eq!(joint, wide, "w={w} v={v} k={k}");
                }
            }
        }
    }
}
