//! Game state for EF games over a fixed pair of factor structures.
//!
//! A [`GamePair`] owns the two structures 𝔄_w and 𝔅_v and the constant
//! vector seeding of §3 (the winning condition appends ⟨𝔄⟩, ⟨𝔅⟩ to the
//! chosen tuples, so the game *starts* from those pairs). Both the exact
//! solver and the strategy validator operate on a `GamePair`.
//!
//! The structures are shared via `Arc`, so a `GamePair` clone is two
//! pointer bumps — cheap enough to hand one to every worker thread of the
//! solver's parallel top-level search. Mirror translations (same factor
//! word on the other side) are precomputed in both directions at build
//! time, making [`GamePair::mirror`] an O(1) array lookup.

use crate::partial_iso::Pair;
use crate::partial_iso::{check_partial_iso, consistent_extension, consistent_extension_seeded};
use fc_logic::{FactorId, FactorStructure};
use fc_words::{Alphabet, Word};
use std::sync::Arc;

/// Which structure a move is played in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The left structure 𝔄_w.
    A,
    /// The right structure 𝔅_v.
    B,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// The fixed part of an EF game: the two structures and the seeded
/// constant pairs.
#[derive(Clone)]
pub struct GamePair {
    /// 𝔄_w.
    pub a: Arc<FactorStructure>,
    /// 𝔅_v.
    pub b: Arc<FactorStructure>,
    /// The constant pairs (⟨𝔄⟩ zipped with ⟨𝔅⟩).
    pub constant_pairs: Vec<Pair>,
    /// Per 𝔄-element: the 𝔅-id of the same factor word, or ⊥ if absent.
    mirror_ab: Vec<FactorId>,
    /// Per 𝔅-element: the 𝔄-id of the same factor word, or ⊥ if absent.
    mirror_ba: Vec<FactorId>,
}

impl GamePair {
    /// Builds the game over `w` and `v`, with Σ the union of their symbols
    /// and `sigma`.
    pub fn new(w: impl Into<Word>, v: impl Into<Word>, sigma: &Alphabet) -> GamePair {
        let w: Word = w.into();
        let v: Word = v.into();
        let sigma = sigma.extended_by(&w).extended_by(&v);
        let a = Arc::new(FactorStructure::new(w, &sigma));
        let b = Arc::new(FactorStructure::new(v, &sigma));
        let constant_pairs = a
            .constants_vector()
            .into_iter()
            .zip(b.constants_vector())
            .collect();
        GamePair::from_parts(a, b, constant_pairs)
    }

    /// Assembles a game from pre-built structures and seeding (used by the
    /// solver's role-swapping callers); computes the mirror tables.
    pub fn from_parts(
        a: Arc<FactorStructure>,
        b: Arc<FactorStructure>,
        constant_pairs: Vec<Pair>,
    ) -> GamePair {
        let mirror_into = |from: &FactorStructure, to: &FactorStructure| -> Vec<FactorId> {
            from.universe()
                .map(|id| to.id_of(from.bytes_of(id)).unwrap_or(FactorId::BOTTOM))
                .collect()
        };
        let mirror_ab = mirror_into(&a, &b);
        let mirror_ba = mirror_into(&b, &a);
        GamePair {
            a,
            b,
            constant_pairs,
            mirror_ab,
            mirror_ba,
        }
    }

    /// Builds the game from two strings over their joint alphabet.
    pub fn of(w: &str, v: &str) -> GamePair {
        GamePair::new(Word::from(w), Word::from(v), &Alphabet::from_symbols(b""))
    }

    /// The same game with the roles of 𝔄 and 𝔅 exchanged.
    pub fn swapped(&self) -> GamePair {
        GamePair {
            a: self.b.clone(),
            b: self.a.clone(),
            constant_pairs: self.constant_pairs.iter().map(|&(x, y)| (y, x)).collect(),
            mirror_ab: self.mirror_ba.clone(),
            mirror_ba: self.mirror_ab.clone(),
        }
    }

    /// `true` iff the constant seeding itself is a partial isomorphism
    /// (it can fail when one word lacks a letter the other has).
    pub fn constants_consistent(&self) -> bool {
        check_partial_iso(&self.a, &self.b, &self.constant_pairs).is_ok()
    }

    /// Whether adding `new` to `pairs` (all assumed consistent and seeded
    /// with the constant pairs) stays a partial isomorphism.
    pub fn consistent(&self, pairs: &[Pair], new: Pair) -> bool {
        consistent_extension(&self.a, &self.b, pairs, new)
    }

    /// [`GamePair::consistent`] for a solver state: the constant seeding is
    /// implicit, `played` holds only the packed moves made so far.
    #[inline]
    pub fn consistent_seeded(&self, played: &[u64], new: Pair) -> bool {
        consistent_extension_seeded(&self.a, &self.b, &self.constant_pairs, played, new)
    }

    /// The structure on `side`.
    pub fn structure(&self, side: Side) -> &FactorStructure {
        match side {
            Side::A => &self.a,
            Side::B => &self.b,
        }
    }

    /// Translates an element of `side` into the same word on the other
    /// side, if that word is also a factor there (⊥ ↦ ⊥). O(1).
    #[inline]
    pub fn mirror(&self, side: Side, id: FactorId) -> Option<FactorId> {
        if id.is_bottom() {
            return Some(FactorId::BOTTOM);
        }
        let m = match side {
            Side::A => self.mirror_ab[id.0 as usize],
            Side::B => self.mirror_ba[id.0 as usize],
        };
        if m.is_bottom() {
            None
        } else {
            Some(m)
        }
    }

    /// Orders a pair `(spoiler element, duplicator response)` into an
    /// (A, B) pair according to the side Spoiler played in.
    pub fn as_ab_pair(&self, side: Side, spoiler: FactorId, duplicator: FactorId) -> Pair {
        match side {
            Side::A => (spoiler, duplicator),
            Side::B => (duplicator, spoiler),
        }
    }

    /// Renders a pair for traces, e.g. `(abaab, ab)`.
    pub fn render_pair(&self, pair: Pair) -> String {
        format!("({}, {})", self.a.render(pair.0), self.b.render(pair.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_seeding() {
        let g = GamePair::of("abab", "ba");
        // Σ = {a, b}: 2 letter pairs + ε pair.
        assert_eq!(g.constant_pairs.len(), 3);
        assert!(g.constants_consistent());
    }

    #[test]
    fn mismatched_alphabets_are_distinguished_at_rank_zero() {
        // w has c, v does not: constant pair (c-id, ⊥). The ground atom
        // (c ≐ c·ε) holds in 𝔄 but not in 𝔅 (⊥ never participates in R∘),
        // so the seeding itself is NOT a partial isomorphism — matching the
        // fact that a quantifier-rank-0 sentence distinguishes the words.
        let g = GamePair::of("abc", "ab");
        assert_eq!(g.constant_pairs.len(), 4);
        assert!(!g.constants_consistent());
    }

    #[test]
    fn mirror_elements() {
        let g = GamePair::of("abaab", "aab");
        let aab_in_a = g.a.id_of(b"aab").unwrap();
        let mirrored = g.mirror(Side::A, aab_in_a).unwrap();
        assert_eq!(g.b.bytes_of(mirrored), b"aab");
        // abaab is not a factor of aab.
        let full = g.a.full_word_id();
        assert_eq!(g.mirror(Side::A, full), None);
        // ⊥ mirrors to ⊥.
        assert_eq!(g.mirror(Side::B, FactorId::BOTTOM), Some(FactorId::BOTTOM));
    }

    #[test]
    fn mirror_table_matches_interner() {
        let g = GamePair::of("abaabb", "babaa");
        for side in [Side::A, Side::B] {
            for id in g.structure(side).universe() {
                let expected = g
                    .structure(side.other())
                    .id_of(g.structure(side).bytes_of(id));
                assert_eq!(g.mirror(side, id), expected);
            }
        }
    }

    #[test]
    fn swapped_game_flips_roles() {
        let g = GamePair::of("abaab", "aab");
        let s = g.swapped();
        assert_eq!(s.a.word(), g.b.word());
        assert_eq!(s.b.word(), g.a.word());
        for id in s.a.universe() {
            assert_eq!(s.mirror(Side::A, id), g.mirror(Side::B, id));
        }
    }

    #[test]
    fn ab_pair_orientation() {
        let g = GamePair::of("a", "b");
        let x = g.a.epsilon();
        let y = g.b.epsilon();
        assert_eq!(g.as_ab_pair(Side::A, x, y), (x, y));
        assert_eq!(g.as_ab_pair(Side::B, y, x), (x, y));
    }

    #[test]
    fn consistency_delegates() {
        let g = GamePair::of("aa", "aaa");
        let pairs = g.constant_pairs.clone();
        let x = g.a.id_of(b"aa").unwrap();
        let y = g.b.id_of(b"aa").unwrap();
        assert!(g.consistent(&pairs, (x, y)));
        // aa ↦ a violates (a-side aa = a·a, b-side a = a·a is false).
        let y2 = g.b.id_of(b"a").unwrap();
        assert!(!g.consistent(&pairs, (x, y2)));
    }
}
