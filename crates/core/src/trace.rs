//! Annotated game transcripts: optimal play, round-by-round commentary,
//! and rendering for the explorer example and the figure reproductions.
//!
//! [`optimal_play`] pits the solver against itself: Spoiler plays a
//! winning move whenever one exists (preferring minimal elements for
//! readable traces), Duplicator plays `best_response_from`. The resulting
//! [`Transcript`] records each round with the solver's evaluation of the
//! position, so a rendered trace *explains* why a game is lost or drawn.

use crate::arena::{GamePair, Side};
use crate::partial_iso::Pair;
use crate::solver::EfSolver;
use fc_logic::FactorId;

/// One annotated round.
#[derive(Clone, Debug)]
pub struct TraceRound {
    /// Where Spoiler played.
    pub side: Side,
    /// Spoiler's element.
    pub spoiler: FactorId,
    /// Duplicator's response (⊥ when none was consistent).
    pub duplicator: Option<FactorId>,
    /// Whether Duplicator still wins the remaining game after this round.
    pub duplicator_alive: bool,
}

/// A full annotated game.
#[derive(Clone, Debug)]
pub struct Transcript {
    /// The game played.
    pub rounds: Vec<TraceRound>,
    /// `true` iff Duplicator survived every round (partial isomorphism
    /// maintained to the end).
    pub duplicator_won: bool,
}

impl Transcript {
    /// Renders the transcript against a game.
    pub fn render(&self, game: &GamePair) -> String {
        let mut out = String::new();
        for (i, r) in self.rounds.iter().enumerate() {
            let side = match r.side {
                Side::A => "A",
                Side::B => "B",
            };
            let spoiler = game.structure(r.side).render(r.spoiler);
            let response = match r.duplicator {
                Some(id) => game.structure(r.side.other()).render(id),
                None => "∅ (no consistent response)".to_string(),
            };
            let status = if r.duplicator_alive { "alive" } else { "LOST" };
            out.push_str(&format!(
                "round {}: Spoiler {side}:{spoiler} → Duplicator {response}   [{status}]\n",
                i + 1
            ));
        }
        out.push_str(if self.duplicator_won {
            "⇒ Duplicator survives\n"
        } else {
            "⇒ Spoiler wins\n"
        });
        out
    }
}

/// Plays `k` rounds with both players optimal. If Duplicator wins the
/// k-round game, Spoiler still plays (first element order) and the
/// transcript shows survival; otherwise the trace follows Spoiler's
/// winning strategy to the kill.
pub fn optimal_play(game: &GamePair, k: u32) -> Transcript {
    let mut solver = EfSolver::new(game.clone());
    let mut state: Vec<Pair> = game.constant_pairs.clone();
    state.sort_unstable();
    state.dedup();
    let mut rounds = Vec::new();
    let mut alive = game.constants_consistent();
    for round in 0..k {
        let remaining = k - round;
        // Spoiler: a winning move if one exists, else the first element.
        let mut choice: Option<(Side, FactorId)> = None;
        if alive {
            'hunt: for side in [Side::A, Side::B] {
                for element in game.structure(side).universe() {
                    if solver
                        .best_response_from(&state, side, element, remaining)
                        .is_none()
                    {
                        choice = Some((side, element));
                        break 'hunt;
                    }
                }
            }
        }
        let (side, element) = choice.unwrap_or_else(|| {
            (
                Side::A,
                game.a
                    .universe()
                    .next_back()
                    .unwrap_or_else(|| game.a.epsilon()),
            )
        });
        // Duplicator: the solver's best response, else any consistent one.
        let best = if alive {
            solver.best_response_from(&state, side, element, remaining)
        } else {
            None
        };
        let salvage = best.or_else(|| {
            game.structure(side.other())
                .universe()
                .find(|&r| game.consistent(&state, game.as_ab_pair(side, element, r)))
        });
        match salvage {
            Some(response) => {
                let pair = game.as_ab_pair(side, element, response);
                if !state.contains(&pair) {
                    state.push(pair);
                    state.sort_unstable();
                }
                alive = alive && best.is_some();
                rounds.push(TraceRound {
                    side,
                    spoiler: element,
                    duplicator: Some(response),
                    duplicator_alive: alive,
                });
            }
            None => {
                alive = false;
                rounds.push(TraceRound {
                    side,
                    spoiler: element,
                    duplicator: None,
                    duplicator_alive: false,
                });
                break;
            }
        }
    }
    Transcript {
        rounds,
        duplicator_won: alive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn losing_games_end_in_a_kill() {
        let game = GamePair::of("aaaa", "aaa");
        let t = optimal_play(&game, 2);
        assert!(!t.duplicator_won);
        assert!(t.rounds.len() <= 2);
        let rendered = t.render(&game);
        assert!(rendered.contains("Spoiler wins"), "{rendered}");
    }

    #[test]
    fn equivalent_games_survive() {
        let game = GamePair::of("aaa", "aaaa");
        let t = optimal_play(&game, 1);
        assert!(t.duplicator_won, "{}", t.render(&game));
        assert_eq!(t.rounds.len(), 1);
        assert!(t.rounds[0].duplicator_alive);
    }

    #[test]
    fn identical_words_always_survive() {
        let game = GamePair::of("abab", "abab");
        let t = optimal_play(&game, 3);
        assert!(t.duplicator_won);
        assert_eq!(t.rounds.len(), 3);
    }

    #[test]
    fn render_mentions_every_round() {
        let game = GamePair::of("ab", "ba");
        let t = optimal_play(&game, 2);
        let rendered = t.render(&game);
        assert!(rendered.contains("round 1"), "{rendered}");
        assert!(!t.duplicator_won);
    }
}
