//! The Pseudo-Congruence composition (Lemma 4.4).
//!
//! Although `≡_k` is **not** a congruence (Prop 3.7), Lemma 4.4 shows a
//! special case where composition works: if
//! `Facs(w₁) ∩ Facs(w₂) = Facs(v₁) ∩ Facs(v₂)`, `r` bounds the common
//! factors' length, and `w₁ ≡_{k+r+2} v₁`, `w₂ ≡_{k+r+2} v₂`, then
//! `w₁·w₂ ≡_k v₁·v₂`.
//!
//! The winning strategy is assembled from two *look-up games* 𝒢₁, 𝒢₂ in
//! which Duplicator plays known winning strategies (here: any
//! [`crate::strategy::DuplicatorStrategy`], typically solver-backed
//! [`crate::strategies::TableStrategy`]s):
//!
//! - Spoiler plays `u ∈ Facs(w₁) ∩ Facs(w₂)` (length ≤ r): feed `u` to
//!   both games; by Lemma 4.2 both respond `u` itself — answer `u`;
//! - `u` only in `Facs(w₁)`: feed 𝒢₁, skip 𝒢₂, answer 𝒢₁'s response;
//! - `u` only in `Facs(w₂)`: symmetric;
//! - `u` crosses the boundary (`A_other`): split `u = u₁·u₂` at the
//!   boundary (`u₁` a suffix of `w₁`, `u₂` a prefix of `w₂` — Fig. 1/3),
//!   feed the halves, answer the concatenation of the responses (a factor
//!   of `v₁·v₂` by Lemma 4.3).
//!
//! The same dispatch applies on the B side with `v₁, v₂`.

use crate::arena::{GamePair, Side};
use crate::strategy::DuplicatorStrategy;
use fc_logic::FactorId;
use fc_words::{factors::max_common_factor_len, is_factor, search, Word};

/// The composed strategy of Lemma 4.4.
pub struct PseudoCongruenceStrategy {
    game1: GamePair,
    game2: GamePair,
    g1: Box<dyn DuplicatorStrategy>,
    g2: Box<dyn DuplicatorStrategy>,
}

impl PseudoCongruenceStrategy {
    /// Composes strategies `g1` (for `w₁` vs `v₁`) and `g2` (for `w₂` vs
    /// `v₂`). The caller is responsible for the lemma's preconditions;
    /// [`PseudoCongruenceStrategy::check_preconditions`] verifies them.
    pub fn new(
        game1: GamePair,
        game2: GamePair,
        g1: Box<dyn DuplicatorStrategy>,
        g2: Box<dyn DuplicatorStrategy>,
    ) -> PseudoCongruenceStrategy {
        PseudoCongruenceStrategy {
            game1,
            game2,
            g1,
            g2,
        }
    }

    /// The composed game `w₁·w₂` vs `v₁·v₂` this strategy plays on.
    pub fn composed_game(&self) -> GamePair {
        let w = self.game1.a.word().concat(self.game2.a.word());
        let v = self.game1.b.word().concat(self.game2.b.word());
        GamePair::new(w, v, self.game1.a.alphabet())
    }

    /// Lemma 4.4's structural preconditions:
    /// `Facs(w₁) ∩ Facs(w₂) = Facs(v₁) ∩ Facs(v₂)`; returns the bound `r`
    /// on the common factors, or `None` if the sets differ.
    pub fn check_preconditions(&self) -> Option<usize> {
        let w1 = self.game1.a.word();
        let w2 = self.game2.a.word();
        let v1 = self.game1.b.word();
        let v2 = self.game2.b.word();
        let cw = fc_words::factors::common_factors(w1.bytes(), w2.bytes());
        let cv = fc_words::factors::common_factors(v1.bytes(), v2.bytes());
        if cw != cv {
            return None;
        }
        Some(max_common_factor_len(w1.bytes(), w2.bytes()))
    }

    /// Components of `side`: `(x₁, x₂)` with the composed word = `x₁·x₂`.
    fn components(&self, side: Side) -> (Word, Word) {
        match side {
            Side::A => (self.game1.a.word().clone(), self.game2.a.word().clone()),
            Side::B => (self.game1.b.word().clone(), self.game2.b.word().clone()),
        }
    }

    /// Splits a boundary-crossing factor `u` of `x₁·x₂` into
    /// `(u₁, u₂) ∈ (suffixes of x₁) × (prefixes of x₂)` — the `f_split` /
    /// `g_split` of the proof (first crossing occurrence).
    fn split_other(&self, side: Side, u: &[u8]) -> Option<(Word, Word)> {
        let (x1, x2) = self.components(side);
        let composed = x1.concat(&x2);
        for start in search::find_all(composed.bytes(), u) {
            if start < x1.len() && start + u.len() > x1.len() {
                let cut = x1.len() - start;
                return Some((Word::from(&u[..cut]), Word::from(&u[cut..])));
            }
        }
        None
    }

    fn respond_bytes(&mut self, side: Side, bytes: &[u8]) -> Option<Vec<u8>> {
        let (x1, x2) = self.components(side);
        let in1 = is_factor(bytes, x1.bytes());
        let in2 = is_factor(bytes, x2.bytes());
        match (in1, in2) {
            (true, true) => {
                // Common factor: feed both; responses must coincide
                // (Lemma 4.2 forces the identical short factor).
                let id1 = self.game1.structure(side).id_of(bytes)?;
                let id2 = self.game2.structure(side).id_of(bytes)?;
                let d1 = self.g1.respond(&self.game1, side, id1);
                let d2 = self.g2.respond(&self.game2, side, id2);
                let b1 = if d1.is_bottom() {
                    return None;
                } else {
                    self.game1.structure(side.other()).bytes_of(d1).to_vec()
                };
                let b2 = if d2.is_bottom() {
                    return None;
                } else {
                    self.game2.structure(side.other()).bytes_of(d2).to_vec()
                };
                if b1 != b2 {
                    // Component strategies disagree — composition invalid;
                    // surface it by failing.
                    return None;
                }
                Some(b1)
            }
            (true, false) => {
                let id1 = self.game1.structure(side).id_of(bytes)?;
                let d1 = self.g1.respond(&self.game1, side, id1);
                self.g2.skip_round();
                if d1.is_bottom() {
                    None
                } else {
                    Some(self.game1.structure(side.other()).bytes_of(d1).to_vec())
                }
            }
            (false, true) => {
                let id2 = self.game2.structure(side).id_of(bytes)?;
                let d2 = self.g2.respond(&self.game2, side, id2);
                self.g1.skip_round();
                if d2.is_bottom() {
                    None
                } else {
                    Some(self.game2.structure(side.other()).bytes_of(d2).to_vec())
                }
            }
            (false, false) => {
                let (u1, u2) = self.split_other(side, bytes)?;
                let id1 = self.game1.structure(side).id_of(u1.bytes())?;
                let id2 = self.game2.structure(side).id_of(u2.bytes())?;
                let d1 = self.g1.respond(&self.game1, side, id1);
                let d2 = self.g2.respond(&self.game2, side, id2);
                if d1.is_bottom() || d2.is_bottom() {
                    return None;
                }
                let mut out = self.game1.structure(side.other()).bytes_of(d1).to_vec();
                out.extend_from_slice(self.game2.structure(side.other()).bytes_of(d2));
                Some(out)
            }
        }
    }
}

impl DuplicatorStrategy for PseudoCongruenceStrategy {
    fn respond(&mut self, game: &GamePair, side: Side, element: FactorId) -> FactorId {
        if element.is_bottom() {
            self.g1.skip_round();
            self.g2.skip_round();
            return FactorId::BOTTOM;
        }
        let bytes = game.structure(side).bytes_of(element).to_vec();
        match self.respond_bytes(side, &bytes) {
            Some(out) => game
                .structure(side.other())
                .id_of(&out)
                .unwrap_or(FactorId::BOTTOM),
            None => FactorId::BOTTOM,
        }
    }

    fn skip_round(&mut self) {
        self.g1.skip_round();
        self.g2.skip_round();
    }

    fn boxed_clone(&self) -> Box<dyn DuplicatorStrategy> {
        Box::new(PseudoCongruenceStrategy {
            game1: self.game1.clone(),
            game2: self.game2.clone(),
            g1: self.g1.boxed_clone(),
            g2: self.g2.boxed_clone(),
        })
    }

    fn name(&self) -> String {
        format!("pseudo-congruence({} | {})", self.g1.name(), self.g2.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver;
    use crate::strategies::{IdentityStrategy, TableStrategy};
    use crate::strategy::validate_strategy;

    /// Builds the composed strategy with solver-backed look-up games of
    /// `k + r + 2` rounds, as the lemma prescribes.
    fn compose(
        w1: &str,
        w2: &str,
        v1: &str,
        v2: &str,
        k: u32,
    ) -> (GamePair, PseudoCongruenceStrategy) {
        let game1 = GamePair::of(w1, v1);
        let game2 = GamePair::of(w2, v2);
        let r = max_common_factor_len(w1.as_bytes(), w2.as_bytes()) as u32;
        let lookup_rounds = k + r + 2;
        let g1 = TableStrategy::new(game1.clone(), lookup_rounds);
        let g2 = TableStrategy::new(game2.clone(), lookup_rounds);
        let strat = PseudoCongruenceStrategy::new(game1, game2, Box::new(g1), Box::new(g2));
        let composed = strat.composed_game();
        (composed, strat)
    }

    #[test]
    fn preconditions_detect_mismatched_intersections() {
        let game1 = GamePair::of("aa", "aa");
        let game2 = GamePair::of("bb", "ab");
        let s = PseudoCongruenceStrategy::new(
            game1,
            game2,
            Box::new(IdentityStrategy),
            Box::new(IdentityStrategy),
        );
        // Facs(aa) ∩ Facs(bb) = {ε}, Facs(aa) ∩ Facs(ab) = {ε, a} — differ.
        assert!(s.check_preconditions().is_none());
    }

    #[test]
    fn example_4_5_composition_a_powers_then_b_powers() {
        // Example 4.5's scaffolding at k = 1 on the rank-2 pair
        // a^12 ≡_2 a^14: validate a^14·b^12 ≡_1 a^12·b^12 via the composed
        // strategy. (The lemma's premise asks for rank k+r+2 = 3 look-up
        // games; the minimal rank-3 unary pair is far larger — see E03 —
        // so the unit test drives the construction with best-effort
        // rank-budgeted look-ups and lets the validator be the judge; the
        // experiment binary runs the full-premise version.)
        let k = 1u32;
        let (p, q) = (12usize, 14usize);
        let w1 = "a".repeat(q);
        let v1 = "a".repeat(p);
        let w2 = "b".repeat(p);
        let v2 = "b".repeat(p);
        let (composed, strat) = compose(&w1, &w2, &v1, &v2, k);
        assert_eq!(strat.check_preconditions(), Some(0));
        let failure = validate_strategy(&composed, &strat, k);
        assert!(
            failure.is_none(),
            "p={p} q={q}: {}",
            failure.unwrap().render(&composed)
        );
        // Cross-check with the exact solver.
        assert!(solver::equivalent(
            composed.a.word().as_str(),
            composed.b.word().as_str(),
            k
        ));
    }

    #[test]
    fn boundary_splitting_produces_valid_factors() {
        let game1 = GamePair::of("aab", "aab");
        let game2 = GamePair::of("baa", "baa");
        let s = PseudoCongruenceStrategy::new(
            game1,
            game2,
            Box::new(IdentityStrategy),
            Box::new(IdentityStrategy),
        );
        // "abba" ⊑ aab·baa crosses the boundary.
        let (u1, u2) = s.split_other(Side::A, b"abba").unwrap();
        assert_eq!(u1.concat(&u2).bytes(), b"abba");
        assert!(Word::from("aab").has_suffix(u1.bytes()));
        assert!(Word::from("baa").has_prefix(u2.bytes()));
    }

    #[test]
    fn identity_components_compose_to_identity_like_wins() {
        // w1 = v1, w2 = v2: identity look-ups make the composition win.
        let game1 = GamePair::of("ab", "ab");
        let game2 = GamePair::of("ba", "ba");
        let s = PseudoCongruenceStrategy::new(
            game1,
            game2,
            Box::new(IdentityStrategy),
            Box::new(IdentityStrategy),
        );
        let composed = s.composed_game();
        let failure = validate_strategy(&composed, &s, 2);
        assert!(failure.is_none(), "{}", failure.unwrap().render(&composed));
    }
}
