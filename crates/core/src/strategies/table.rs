//! Solver-backed optimal play ("table" strategy).
//!
//! A [`TableStrategy`] replays the exact solver's winning responses. Given
//! a solver-established fact `w ≡_k v`, the table strategy *is* a winning
//! strategy for the k-round game — this is how abstract equivalence facts
//! (e.g. Lemma 3.6's `aᵖ ≡_k a^q`) become the playable look-up games that
//! the Pseudo-Congruence and Primitive Power compositions consume.
//!
//! All clones of a table strategy share one memo table (via `Arc<Mutex>`,
//! so clones may be handed to worker threads), and exhaustive validation
//! does not re-solve subgames.

use crate::arena::{GamePair, Side};
use crate::partial_iso::Pair;
use crate::solver::EfSolver;
use crate::strategy::DuplicatorStrategy;
use fc_logic::FactorId;
use std::sync::{Arc, Mutex};

/// Optimal Duplicator play for a fixed game and round budget.
#[derive(Clone)]
pub struct TableStrategy {
    solver: Arc<Mutex<EfSolver>>,
    pairs: Vec<Pair>,
    remaining: u32,
}

impl TableStrategy {
    /// A table strategy for the `rounds`-round game on `game`.
    ///
    /// If `w ≢_rounds v` the strategy still plays (best effort) but will
    /// lose some line — callers should have established equivalence first
    /// (e.g. via [`TableStrategy::for_equivalent`]).
    pub fn new(game: GamePair, rounds: u32) -> TableStrategy {
        let mut pairs = game.constant_pairs.clone();
        pairs.sort_unstable();
        pairs.dedup();
        TableStrategy {
            solver: Arc::new(Mutex::new(EfSolver::new(game))),
            pairs,
            remaining: rounds,
        }
    }

    /// Builds the strategy only if the solver confirms `w ≡_rounds v`.
    pub fn for_equivalent(game: GamePair, rounds: u32) -> Option<TableStrategy> {
        let s = TableStrategy::new(game, rounds);
        if s.solver.lock().unwrap().equivalent(rounds) {
            Some(s)
        } else {
            None
        }
    }

    /// Rounds still available.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// The game this strategy plays on.
    pub fn game(&self) -> GamePair {
        self.solver.lock().unwrap().game().clone()
    }
}

impl DuplicatorStrategy for TableStrategy {
    fn respond(&mut self, _game: &GamePair, side: Side, element: FactorId) -> FactorId {
        let budget = self.remaining.max(1);
        let mut solver = self.solver.lock().unwrap();
        let response = solver
            .best_response_from(&self.pairs, side, element, budget)
            .or_else(|| {
                // Losing position: salvage any consistent response.
                let game = solver.game().clone();
                let mut opts: Vec<FactorId> = game.structure(side.other()).universe().collect();
                opts.push(FactorId::BOTTOM);
                opts.into_iter().find(|&r| {
                    let p = game.as_ab_pair(side, element, r);
                    game.consistent(&self.pairs, p)
                })
            })
            .unwrap_or(FactorId::BOTTOM);
        let pair = solver.game().as_ab_pair(side, element, response);
        if !self.pairs.contains(&pair) {
            self.pairs.push(pair);
            self.pairs.sort_unstable();
        }
        self.remaining = self.remaining.saturating_sub(1);
        response
    }

    fn skip_round(&mut self) {
        self.remaining = self.remaining.saturating_sub(1);
    }

    fn boxed_clone(&self) -> Box<dyn DuplicatorStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("table({} rounds left)", self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::validate_strategy;

    #[test]
    fn replays_solver_equivalences() {
        // a^3 ≡_1 a^4 (see solver tests): the table strategy must win all
        // 1-round lines.
        let game = GamePair::of("aaa", "aaaa");
        let s = TableStrategy::for_equivalent(game.clone(), 1).expect("a^3 ≡_1 a^4");
        assert!(validate_strategy(&game, &s, 1).is_none());
    }

    #[test]
    fn refuses_inequivalent_games() {
        let game = GamePair::of("a", "aa");
        assert!(TableStrategy::for_equivalent(game, 1).is_none());
    }

    #[test]
    fn wins_multi_round_games_on_equal_words() {
        let game = GamePair::of("aba", "aba");
        let s = TableStrategy::for_equivalent(game.clone(), 2).expect("w ≡_2 w");
        assert!(validate_strategy(&game, &s, 2).is_none());
    }

    #[test]
    fn wins_nontrivial_unary_equivalence() {
        // The minimal rank-2 unary pair is a^12 ≡_2 a^14 (experiment E03);
        // the table strategy must replay it.
        let (p, q) = (12usize, 14usize);
        let game = GamePair::of(&"a".repeat(p), &"a".repeat(q));
        let s = TableStrategy::for_equivalent(game.clone(), 2).expect("a^12 ≡_2 a^14");
        assert!(validate_strategy(&game, &s, 2).is_none(), "p={p} q={q}");
    }
}
