//! Iterated Pseudo-Congruence: composing strategies across an n-fold
//! concatenation `w₁·w₂⋯w_n ≡_k v₁·v₂⋯v_n`.
//!
//! The paper applies Lemma 4.4 twice for L₆ (`aⁿbⁿ(ab)ⁿ`: first glue the
//! a-block to the b-block, then glue the result to the (ab)-block) and
//! similarly inside the Fooling Lemma. [`chain`] builds the left-nested
//! composition `((g₁ ⊕ g₂) ⊕ g₃) ⊕ …`, wiring each intermediate composed
//! strategy as the left look-up game of the next level.
//!
//! Round budgets: the lemma needs the components at level `i` to win
//! `k + rᵢ + 2` rounds where `rᵢ` bounds the common factors at that
//! junction; [`chain_with_tables`] provisions solver-backed tables with
//! exactly those budgets, computing each `rᵢ` from the actual words.

use crate::arena::GamePair;
use crate::strategies::{PseudoCongruenceStrategy, TableStrategy};
use crate::strategy::DuplicatorStrategy;
use fc_words::factors::max_common_factor_len;
use fc_words::Word;

/// One component of the chain: the pair (wᵢ, vᵢ) plus Duplicator's
/// strategy for their game.
pub struct ChainLink {
    /// The A-side word.
    pub w: Word,
    /// The B-side word.
    pub v: Word,
    /// A winning strategy for the (w, v) game at the required budget.
    pub strategy: Box<dyn DuplicatorStrategy>,
}

/// Left-nested composition of ≥ 1 links. Returns the composed strategy
/// together with the composed game `w₁⋯w_n` vs `v₁⋯v_n`.
pub fn chain(links: Vec<ChainLink>) -> (GamePair, Box<dyn DuplicatorStrategy>) {
    assert!(!links.is_empty(), "chain needs at least one link");
    let mut it = links.into_iter();
    let first = it.next().unwrap();
    let mut acc_w = first.w;
    let mut acc_v = first.v;
    let mut acc_strategy: Box<dyn DuplicatorStrategy> = first.strategy;
    for link in it {
        let game1 = GamePair::new(
            acc_w.clone(),
            acc_v.clone(),
            &fc_words::Alphabet::from_symbols(b""),
        );
        let game2 = GamePair::new(
            link.w.clone(),
            link.v.clone(),
            &fc_words::Alphabet::from_symbols(b""),
        );
        let composed = PseudoCongruenceStrategy::new(game1, game2, acc_strategy, link.strategy);
        acc_w = acc_w.concat(&link.w);
        acc_v = acc_v.concat(&link.v);
        acc_strategy = Box::new(composed);
    }
    let game = GamePair::new(acc_w, acc_v, &fc_words::Alphabet::from_symbols(b""));
    (game, acc_strategy)
}

/// Convenience: builds the chain with solver-backed table look-ups, each
/// provisioned with the Lemma 4.4 budget `k + rᵢ + 2` computed from the
/// actual junction (using the *accumulated* left word, as the nesting
/// demands).
pub fn chain_with_tables(
    parts: &[(Word, Word)],
    k: u32,
) -> (GamePair, Box<dyn DuplicatorStrategy>) {
    assert!(!parts.is_empty());
    // Budgets: walk the junctions left to right.
    let mut links = Vec::with_capacity(parts.len());
    let mut acc_w = Word::epsilon();
    for (i, (w, v)) in parts.iter().enumerate() {
        let budget = if i == 0 {
            // The first link's budget is set by the *first* junction.
            let r = if parts.len() > 1 {
                max_common_factor_len(w.bytes(), parts[1].0.bytes()) as u32
            } else {
                0
            };
            k + r + 2
        } else {
            let r = max_common_factor_len(acc_w.bytes(), w.bytes()) as u32;
            k + r + 2
        };
        let game = GamePair::new(w.clone(), v.clone(), &fc_words::Alphabet::from_symbols(b""));
        links.push(ChainLink {
            w: w.clone(),
            v: v.clone(),
            strategy: Box::new(TableStrategy::new(game, budget)),
        });
        acc_w = acc_w.concat(w);
    }
    chain(links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::equivalent;
    use crate::strategy::validate_strategy;

    #[test]
    fn three_block_chain_for_l6_small() {
        // L₆'s argument shape at k = 1 on the rank-1 pair (3, 4):
        // a⁴·b³·(ab)³ vs a³·b³·(ab)³ — Pseudo-Congruence applied twice
        // (r = 0 then r = 2). The full-size (12, 14) instance runs in the
        // experiment registry (E07, Full effort).
        let parts = vec![
            (Word::from("a").pow(4), Word::from("a").pow(3)),
            (Word::from("b").pow(3), Word::from("b").pow(3)),
            (Word::from("ab").pow(3), Word::from("ab").pow(3)),
        ];
        let (game, strategy) = chain_with_tables(&parts, 1);
        let failure = validate_strategy(&game, strategy.as_ref(), 1);
        assert!(failure.is_none(), "{}", failure.unwrap().render(&game));
        assert!(equivalent(
            game.a.word().as_str(),
            game.b.word().as_str(),
            1
        ));
    }

    #[test]
    fn single_link_chain_is_the_strategy_itself() {
        let parts = vec![(Word::from("ab"), Word::from("ab"))];
        let (game, strategy) = chain_with_tables(&parts, 2);
        assert!(validate_strategy(&game, strategy.as_ref(), 2).is_none());
    }

    #[test]
    fn two_link_chain_matches_direct_composition() {
        let parts = vec![
            (Word::from("a").pow(4), Word::from("a").pow(3)),
            (Word::from("b").pow(3), Word::from("b").pow(3)),
        ];
        let (game, strategy) = chain_with_tables(&parts, 1);
        assert!(validate_strategy(&game, strategy.as_ref(), 1).is_none());
        assert_eq!(game.a.word().len(), 7);
        assert_eq!(game.b.word().len(), 6);
    }
}
