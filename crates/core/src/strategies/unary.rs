//! The end-aligned strategy for unary power games.
//!
//! On `aᴾ` vs `a^Q` (wlog `P ≥ Q`), the natural Duplicator strategy —
//! implicit in the semilinearity argument behind Lemma 3.6 — answers a
//! pick `aⁿ` by
//!
//! - `aⁿ` itself when `n` is small (`n ≤ low`), and
//! - `a^{n − (P − Q)}` when `n` is large (aligned from the top end),
//!
//! and symmetrically (adding `P − Q`) for picks on the smaller side. Small
//! picks must be answered identically (Lemma 4.2); picks near the full
//! word must keep their distance to the end (the `almostFull` claim inside
//! Lemma 4.9's proof). Between the two regimes the strategy needs
//! `low` to be large enough relative to the number of rounds — validation
//! against the exact solver quantifies exactly how large (experiment E03).
//!
//! This strategy is *stateless*, so it also serves as the look-up game
//! driver for the Primitive Power composition at any depth the validator
//! certifies.

use crate::arena::{GamePair, Side};
use crate::strategy::DuplicatorStrategy;
use fc_logic::FactorId;
use fc_words::Word;

/// End-aligned Duplicator play on a unary power game.
#[derive(Clone, Copy, Debug)]
pub struct UnaryEndAlignedStrategy {
    /// Exponent of the A-side word.
    pub p_a: usize,
    /// Exponent of the B-side word.
    pub p_b: usize,
    /// Picks of length ≤ `low` are answered identically.
    pub low: usize,
}

impl UnaryEndAlignedStrategy {
    /// Creates the strategy; `low` defaults to `min(p_a, p_b) − diff − 1`
    /// when not meaningful, callers usually pass an explicit threshold.
    pub fn new(p_a: usize, p_b: usize, low: usize) -> UnaryEndAlignedStrategy {
        UnaryEndAlignedStrategy { p_a, p_b, low }
    }

    /// The game this strategy is meant for (`letter^{p_a}` vs
    /// `letter^{p_b}`).
    pub fn game(&self, letter: u8) -> GamePair {
        GamePair::new(
            Word::symbol(letter).pow(self.p_a),
            Word::symbol(letter).pow(self.p_b),
            &fc_words::Alphabet::from_symbols(&[letter]),
        )
    }

    /// The exponent Duplicator answers with, given a pick of exponent `n`
    /// on `side`.
    pub fn respond_exponent(&self, side: Side, n: usize) -> usize {
        let (from, to) = match side {
            Side::A => (self.p_a, self.p_b),
            Side::B => (self.p_b, self.p_a),
        };
        if n <= self.low.min(to) {
            return n;
        }
        // Align from the top: keep the distance to the end.
        let dist = from.saturating_sub(n);
        to.saturating_sub(dist).min(to)
    }
}

impl DuplicatorStrategy for UnaryEndAlignedStrategy {
    fn respond(&mut self, game: &GamePair, side: Side, element: FactorId) -> FactorId {
        if element.is_bottom() {
            return FactorId::BOTTOM;
        }
        let n = game.structure(side).len_of(element);
        let m = self.respond_exponent(side, n);
        let letter = game
            .structure(side)
            .alphabet()
            .symbols()
            .first()
            .copied()
            .unwrap_or(b'a');
        game.structure(side.other())
            .id_of(Word::symbol(letter).pow(m).bytes())
            .unwrap_or(FactorId::BOTTOM)
    }

    fn boxed_clone(&self) -> Box<dyn DuplicatorStrategy> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!(
            "unary-end-aligned(P={}, Q={}, low={})",
            self.p_a, self.p_b, self.low
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::validate_strategy;

    #[test]
    fn wins_rank_1_on_the_minimal_rank_2_pair() {
        // a^12 ≡_2 a^14: the end-aligned strategy wins the 1-round game.
        let s = UnaryEndAlignedStrategy::new(14, 12, 9);
        let game = s.game(b'a');
        assert!(validate_strategy(&game, &s, 1).is_none());
    }

    #[test]
    fn order_style_play_fails_rank_2_despite_equivalence() {
        // a^12 ≡_2 a^14 holds (the solver's table strategy wins), but the
        // purely order-based end-aligned strategy loses the 2-round game:
        // Spoiler exploits the *additive* structure (answering a¹⁰ by a¹²
        // walks into 12 = 6+6 while 10 ≠ 6+6, and the halving pick follows).
        // This is the paper's §1 observation that locality/order techniques
        // fail on FC's non-sparse structures, observed live.
        for low in 0..=12 {
            let s = UnaryEndAlignedStrategy::new(14, 12, low);
            let game = s.game(b'a');
            assert!(
                validate_strategy(&game, &s, 2).is_some(),
                "low={low}: end-aligned play should lose rank 2"
            );
        }
        // …whereas the solver-backed table strategy wins (see table.rs).
        assert!(crate::solver::equivalent(
            &"a".repeat(12),
            &"a".repeat(14),
            2
        ));
    }

    #[test]
    fn respects_small_and_large_regimes() {
        let s = UnaryEndAlignedStrategy::new(14, 12, 9);
        assert_eq!(s.respond_exponent(Side::A, 0), 0);
        assert_eq!(s.respond_exponent(Side::A, 5), 5);
        assert_eq!(s.respond_exponent(Side::A, 14), 12);
        assert_eq!(s.respond_exponent(Side::A, 13), 11);
        assert_eq!(s.respond_exponent(Side::A, 11), 9);
        assert_eq!(s.respond_exponent(Side::B, 12), 14);
        assert_eq!(s.respond_exponent(Side::B, 5), 5);
    }

    #[test]
    fn fails_when_low_is_too_small_for_the_rank() {
        // With low = 0, Spoiler's pick a¹ gets answered a^{1−2}, breaking
        // the constant pattern — the validator sees it.
        let s = UnaryEndAlignedStrategy::new(14, 12, 0);
        let game = s.game(b'a');
        assert!(validate_strategy(&game, &s, 1).is_some());
    }

    #[test]
    fn loses_on_pairs_the_solver_rejects() {
        // a^3 vs a^5 are ≢_2; no threshold can save the strategy.
        for low in 0..=5 {
            let s = UnaryEndAlignedStrategy::new(5, 3, low);
            let game = s.game(b'a');
            assert!(
                validate_strategy(&game, &s, 2).is_some(),
                "low={low} should fail"
            );
        }
    }
}
