//! The Primitive Power strategy (Lemma 4.9).
//!
//! If `aᵖ ≡_{k+3} a^q` then `wᵖ ≡_k w^q` for **any primitive** `w`. The
//! strategy (Fig. 2/3 of the paper) runs a unary look-up game 𝒢_l over
//! `a^{exp_A}` vs `a^{exp_B}`:
//!
//! - Spoiler plays `u` with `exp_w(u) = n`: feed `aⁿ` (same side) to 𝒢_l,
//!   receiving `aᵐ`;
//! - if `m = 0` (so `n = 0`): answer the identical factor `u`;
//! - else factorise `u = u₁·wⁿ·u₂` (unique by Lemma 4.8) and answer
//!   `u₁·wᵐ·u₂`.

use crate::arena::{GamePair, Side};
use crate::strategy::DuplicatorStrategy;
use fc_logic::FactorId;
use fc_words::exponent::{exp, power_factorisation};
use fc_words::Word;

/// The Lemma 4.9 strategy for the game on `w^{exp_a}` vs `w^{exp_b}`.
pub struct PrimitivePowerStrategy {
    root: Word,
    lookup_game: GamePair,
    lookup: Box<dyn DuplicatorStrategy>,
}

impl PrimitivePowerStrategy {
    /// Creates the strategy.
    ///
    /// * `root` — the primitive word `w`;
    /// * `lookup_game` — the unary game `a^{p_A}` vs `a^{p_B}` where `p_A`
    ///   (`p_B`) is the exponent of the composed game's A (B) side;
    /// * `lookup` — a winning Duplicator strategy for `k + 3` rounds of
    ///   the look-up game.
    ///
    /// # Panics
    /// Panics if `root` is not primitive.
    pub fn new(
        root: Word,
        lookup_game: GamePair,
        lookup: Box<dyn DuplicatorStrategy>,
    ) -> PrimitivePowerStrategy {
        assert!(
            fc_words::is_primitive(root.bytes()),
            "Lemma 4.9 requires a primitive root"
        );
        PrimitivePowerStrategy {
            root,
            lookup_game,
            lookup,
        }
    }

    /// The composed game `w^{p_A}` vs `w^{p_B}` matching the look-up game's
    /// exponents.
    pub fn composed_game(&self) -> GamePair {
        let pa = self.lookup_game.a.word().len();
        let pb = self.lookup_game.b.word().len();
        GamePair::new(
            self.root.pow(pa),
            self.root.pow(pb),
            self.lookup_game.a.alphabet(),
        )
    }

    fn respond_bytes(&mut self, side: Side, bytes: &[u8]) -> Option<Vec<u8>> {
        let n = exp(self.root.bytes(), bytes);
        let a_n = Word::from("a").pow(n);
        let lookup_elem = self.lookup_game.structure(side).id_of(a_n.bytes())?;
        let d = self.lookup.respond(&self.lookup_game, side, lookup_elem);
        if d.is_bottom() {
            return None;
        }
        let m = self.lookup_game.structure(side.other()).len_of(d);
        if n == 0 {
            // Lemma 4.2 forces the look-up response ε; answer identically.
            if m != 0 {
                return None;
            }
            return Some(bytes.to_vec());
        }
        let f = power_factorisation(self.root.bytes(), bytes)?;
        Some(
            f.with_exponent(m)
                .assemble(self.root.bytes())
                .bytes()
                .to_vec(),
        )
    }
}

impl DuplicatorStrategy for PrimitivePowerStrategy {
    fn respond(&mut self, game: &GamePair, side: Side, element: FactorId) -> FactorId {
        if element.is_bottom() {
            self.lookup.skip_round();
            return FactorId::BOTTOM;
        }
        let bytes = game.structure(side).bytes_of(element).to_vec();
        match self.respond_bytes(side, &bytes) {
            Some(out) => game
                .structure(side.other())
                .id_of(&out)
                .unwrap_or(FactorId::BOTTOM),
            None => FactorId::BOTTOM,
        }
    }

    fn skip_round(&mut self) {
        self.lookup.skip_round();
    }

    fn boxed_clone(&self) -> Box<dyn DuplicatorStrategy> {
        Box::new(PrimitivePowerStrategy {
            root: self.root.clone(),
            lookup_game: self.lookup_game.clone(),
            lookup: self.lookup.boxed_clone(),
        })
    }

    fn name(&self) -> String {
        format!("primitive-power(root={})", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver;
    use crate::strategies::TableStrategy;
    use crate::strategy::validate_strategy;

    #[test]
    fn lemma_4_9_strategy_wins_for_primitive_roots() {
        // Lemma 4.9's premise at k = 1 is a^p ≡_4 a^q; minimal rank-4
        // unary pairs are beyond exhaustive search (E03). The unit test
        // instead drives the construction with the end-aligned unary
        // strategy as the look-up — exactly the behaviour the proof's
        // `almostFull` claim forces (distance-to-end preservation) — and
        // lets the exhaustive validator plus the exact solver judge.
        let k = 1u32;
        let (p, q) = (12usize, 14usize);
        for root in ["ab", "aab"] {
            let lookup_game = GamePair::of(&"a".repeat(q), &"a".repeat(p));
            let lookup = crate::strategies::UnaryEndAlignedStrategy::new(q, p, 7);
            let strat =
                PrimitivePowerStrategy::new(Word::from(root), lookup_game, Box::new(lookup));
            let composed = strat.composed_game();
            let failure = validate_strategy(&composed, &strat, k);
            assert!(
                failure.is_none(),
                "root={root} p={p} q={q}: {}",
                failure.unwrap().render(&composed)
            );
            // Cross-check with the exact solver where feasible.
            assert!(solver::equivalent(
                composed.a.word().as_str(),
                composed.b.word().as_str(),
                k
            ));
        }
    }

    #[test]
    #[should_panic(expected = "primitive")]
    fn rejects_imprimitive_roots() {
        let lookup_game = GamePair::of("aaa", "aa");
        let lookup = TableStrategy::new(lookup_game.clone(), 4);
        let _ = PrimitivePowerStrategy::new(Word::from("abab"), lookup_game, Box::new(lookup));
    }

    #[test]
    fn exponent_swap_produces_factors() {
        // Manual spot check of the response shape: root = ab, game
        // (ab)^14 vs (ab)^12; Spoiler plays b·(ab)^2·a: the response must
        // again be of the shape b·(ab)^m·a (Fig. 2 of the paper).
        let k = 1u32;
        let lookup_game = GamePair::of(&"a".repeat(14), &"a".repeat(12));
        let lookup = TableStrategy::new(lookup_game.clone(), k + 3);
        let mut strat =
            PrimitivePowerStrategy::new(Word::from("ab"), lookup_game, Box::new(lookup));
        let composed = strat.composed_game();
        let u = composed.a.id_of(b"bababa").unwrap(); // b·(ab)^2·a
        let d = strat.respond(&composed, Side::A, u);
        assert!(!d.is_bottom());
        let bytes = composed.b.bytes_of(d);
        assert!(bytes.first() == Some(&b'b') && bytes.last() == Some(&b'a'));
    }
}
