//! Concrete Duplicator strategies.
//!
//! - [`identity`]: respond with the same factor (wins iff `w = v`);
//! - [`table`]: solver-backed optimal play — turns a solver-established
//!   `w ≡_k v` fact into a *playable* winning strategy, used as the
//!   look-up games inside compositions;
//! - [`pseudo_congruence`]: the Lemma 4.4 composition — a winning strategy
//!   for `w₁w₂ ≡_k v₁v₂` assembled from strategies for the component games;
//! - [`primitive_power`]: the Lemma 4.9 strategy — a winning strategy for
//!   `wᵖ ≡_k w^q` (primitive `w`) driven by a unary look-up game on
//!   `aᵖ ≡_{k+3} a^q`.

pub mod chain;
pub mod identity;
pub mod primitive_power;
pub mod pseudo_congruence;
pub mod table;
pub mod unary;

pub use chain::{chain, chain_with_tables, ChainLink};
pub use identity::IdentityStrategy;
pub use primitive_power::PrimitivePowerStrategy;
pub use pseudo_congruence::PseudoCongruenceStrategy;
pub use table::TableStrategy;
pub use unary::UnaryEndAlignedStrategy;
