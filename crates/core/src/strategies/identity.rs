//! The identity strategy: answer with the same word on the other side.
//!
//! This is Duplicator's trivially winning strategy when `w = v` (used by
//! the paper whenever it writes "trivially, u ≡_k u"). On `w ≠ v` it loses
//! as soon as Spoiler plays a factor the other side lacks — the validator
//! demonstrates this.

use crate::arena::{GamePair, Side};
use crate::strategy::DuplicatorStrategy;
use fc_logic::FactorId;

/// Respond with the identical factor (⊥ if absent on the other side).
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityStrategy;

impl DuplicatorStrategy for IdentityStrategy {
    fn respond(&mut self, game: &GamePair, side: Side, element: FactorId) -> FactorId {
        game.mirror(side, element).unwrap_or(FactorId::BOTTOM)
    }

    fn boxed_clone(&self) -> Box<dyn DuplicatorStrategy> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        "identity".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::validate_strategy;

    #[test]
    fn wins_on_equal_words_at_depth_3() {
        for w in ["", "a", "ab", "abab"] {
            let game = GamePair::of(w, w);
            assert!(
                validate_strategy(&game, &IdentityStrategy, 3).is_none(),
                "w={w}"
            );
        }
    }

    #[test]
    fn loses_when_words_differ() {
        let game = GamePair::of("ab", "ba");
        assert!(validate_strategy(&game, &IdentityStrategy, 1).is_some());
    }
}
