//! The definitional reference solver — deliberately naive.
//!
//! This module re-implements the `𝔄_w ≡_k 𝔅_v` decision exactly as §3
//! states it, with **no** memoization, pruning, packing, or incremental
//! checking: every candidate position is validated by running the full
//! [`check_partial_iso`] over the complete pair list (constant seeding
//! included). It is exponentially slower than [`crate::solver::EfSolver`]
//! and exists for one purpose: the optimized solver is differentially
//! tested against it on exhaustive small windows (`tests/differential.rs`
//! and the property suite), so every optimization must preserve the
//! definitional semantics verbatim.

use crate::arena::{GamePair, Side};
use crate::partial_iso::{check_partial_iso, Pair};
use fc_logic::FactorId;

/// Decides `w ≡_k v` by the definitional alternating search.
pub fn naive_equivalent(w: &str, v: &str, k: u32) -> bool {
    let game = GamePair::of(w, v);
    naive_game_equivalent(&game, k)
}

/// Decides the game verdict for a pre-built [`GamePair`].
pub fn naive_game_equivalent(game: &GamePair, k: u32) -> bool {
    let seed = game.constant_pairs.clone();
    if check_partial_iso(&game.a, &game.b, &seed).is_err() {
        return false;
    }
    wins(game, &seed, k)
}

/// Duplicator wins `k` more rounds from `pairs` (a full pair list, seeded
/// with the constants, already a partial isomorphism).
fn wins(game: &GamePair, pairs: &[Pair], k: u32) -> bool {
    if k == 0 {
        return true;
    }
    for side in [Side::A, Side::B] {
        let mut spoiler_moves: Vec<FactorId> = game.structure(side).universe().collect();
        spoiler_moves.push(FactorId::BOTTOM);
        for element in spoiler_moves {
            let mut responses: Vec<FactorId> = game.structure(side.other()).universe().collect();
            responses.push(FactorId::BOTTOM);
            let survives = responses.into_iter().any(|response| {
                let pair = game.as_ab_pair(side, element, response);
                let mut next = pairs.to_vec();
                next.push(pair);
                check_partial_iso(&game.a, &game.b, &next).is_ok() && wins(game, &next, k - 1)
            });
            if !survives {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_reproduces_known_verdicts() {
        assert!(naive_equivalent("aaa", "aaaa", 1));
        assert!(!naive_equivalent("a", "aa", 1));
        assert!(!naive_equivalent("ab", "ba", 1));
        assert!(equivalent_on(&["ab", "ba"], 0));
        assert!(!naive_equivalent("", "a", 0));
        assert!(!naive_equivalent("aa", "aaa", 2));
    }

    fn equivalent_on(pair: &[&str; 2], k: u32) -> bool {
        naive_equivalent(pair[0], pair[1], k)
    }
}
