//! Existential Ehrenfeucht-Fraïssé games (the paper's §7 suggestion for
//! core-spanner inexpressibility).
//!
//! In the *existential* (one-sided) k-round game on (𝔄_w, 𝔅_v), Spoiler
//! may only pick elements of 𝔄_w; Duplicator responds in 𝔅_v; the winning
//! condition is a **partial homomorphism**: every R∘ fact and constant
//! identity among the chosen A-elements must hold of the B-responses
//! (equalities must be *preserved*, not reflected).
//!
//! Writing `w ⇛_k v` when Duplicator wins, the classical correspondence
//! (mirrored from the FO case) is: `w ⇛_k v` iff every
//! **existential-positive** FC sentence of quantifier rank ≤ k true in
//! 𝔄_w is true in 𝔅_v. The companion fragment check lives in
//! `fc_logic::formula::Formula::is_existential_positive`; the
//! correspondence is machine-checked in this crate's tests and the
//! integration suite.

use crate::arena::GamePair;
use fc_logic::{FactorId, FactorStructure};
use std::collections::HashMap;

/// A pair of chosen elements (A-side, B-side).
type Pair = (FactorId, FactorId);

/// Checks the partial-homomorphism condition: all constants, equalities and
/// R∘ facts among the A-components are preserved by the B-components.
pub fn check_partial_hom(a: &FactorStructure, b: &FactorStructure, pairs: &[Pair]) -> bool {
    let n = pairs.len();
    for i in 0..n {
        let (ai, bi) = pairs[i];
        // Constants must be preserved: a_i = c^𝔄 ⟹ b_i = c^𝔅.
        for &sym in a.alphabet().symbols() {
            if ai == a.constant(sym) && !ai.is_bottom() && bi != b.constant(sym) {
                return false;
            }
        }
        if ai == a.epsilon() && bi != b.epsilon() {
            return false;
        }
        for j in 0..n {
            // Equalities preserved (the map must be a function).
            if pairs[i].0 == pairs[j].0 && pairs[i].1 != pairs[j].1 {
                return false;
            }
            for l in 0..n {
                if a.concat_holds(pairs[l].0, pairs[i].0, pairs[j].0)
                    && !b.concat_holds(pairs[l].1, pairs[i].1, pairs[j].1)
                {
                    return false;
                }
            }
        }
    }
    true
}

/// Incremental version of [`check_partial_hom`] for one new pair.
fn consistent_hom_extension(
    a: &FactorStructure,
    b: &FactorStructure,
    pairs: &[Pair],
    new: Pair,
) -> bool {
    let (na, nb) = new;
    for &sym in a.alphabet().symbols() {
        if na == a.constant(sym) && !na.is_bottom() && nb != b.constant(sym) {
            return false;
        }
    }
    if na == a.epsilon() && nb != b.epsilon() {
        return false;
    }
    for &(ai, bi) in pairs {
        if na == ai && nb != bi {
            return false;
        }
    }
    let ext_len = pairs.len() + 1;
    let get = |i: usize| -> Pair {
        if i < pairs.len() {
            pairs[i]
        } else {
            new
        }
    };
    let newi = ext_len - 1;
    for l in 0..ext_len {
        for i in 0..ext_len {
            for j in 0..ext_len {
                if l != newi && i != newi && j != newi {
                    continue;
                }
                let (la, lb) = get(l);
                let (ia, ib) = get(i);
                let (ja, jb) = get(j);
                if a.concat_holds(la, ia, ja) && !b.concat_holds(lb, ib, jb) {
                    return false;
                }
            }
        }
    }
    true
}

/// Memoizing solver for the existential game: decides `w ⇛_k v`.
pub struct ExistentialSolver {
    game: GamePair,
    memo: HashMap<(Vec<Pair>, u32), bool>,
}

impl ExistentialSolver {
    /// Creates a solver for the one-sided game A → B.
    pub fn new(game: GamePair) -> ExistentialSolver {
        ExistentialSolver {
            game,
            memo: HashMap::new(),
        }
    }

    /// Convenience constructor from strings.
    pub fn of(w: &str, v: &str) -> ExistentialSolver {
        ExistentialSolver::new(GamePair::of(w, v))
    }

    /// Decides `w ⇛_k v` (Duplicator survives k one-sided rounds).
    pub fn simulates(&mut self, k: u32) -> bool {
        let mut init: Vec<Pair> = self.game.constant_pairs.clone();
        init.sort_unstable();
        init.dedup();
        if !check_partial_hom(&self.game.a, &self.game.b, &init) {
            return false;
        }
        self.wins(init, k)
    }

    fn wins(&mut self, state: Vec<Pair>, k: u32) -> bool {
        if k == 0 {
            return true;
        }
        if let Some(&cached) = self.memo.get(&(state.clone(), k)) {
            return cached;
        }
        let mut result = true;
        'spoiler: for element in self.game.a.universe() {
            let mut responded = false;
            for response in self.game.b.universe() {
                let pair = (element, response);
                if !consistent_hom_extension(&self.game.a, &self.game.b, &state, pair) {
                    continue;
                }
                let mut next = state.clone();
                if !next.contains(&pair) {
                    next.push(pair);
                    next.sort_unstable();
                }
                if self.wins(next, k - 1) {
                    responded = true;
                    break;
                }
            }
            if !responded {
                result = false;
                break 'spoiler;
            }
        }
        self.memo.insert((state, k), result);
        result
    }
}

/// One-call convenience: `w ⇛_k v`?
pub fn simulates(w: &str, v: &str, k: u32) -> bool {
    ExistentialSolver::of(w, v).simulates(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::equivalent;
    use fc_words::Alphabet;

    #[test]
    fn simulation_is_reflexive_and_coarser_than_equivalence() {
        let words = ["", "a", "ab", "aab", "abab"];
        for w in words {
            for v in words {
                for k in 0..=2u32 {
                    if equivalent(w, v, k) {
                        assert!(simulates(w, v, k), "≡_{k} must imply ⇛_{k}: {w} vs {v}");
                    }
                }
                assert!(simulates(w, w, 2), "reflexivity: {w}");
            }
        }
    }

    #[test]
    fn simulation_is_directional() {
        // a ⇛ aa at rank 1 (everything a's structure shows embeds into
        // aa's), but the converse fails: Spoiler picks aa ∈ 𝔄_{aa}; any
        // image must satisfy x = a·a, and 𝔅_a has none.
        assert!(simulates("a", "aa", 1));
        assert!(!simulates("aa", "a", 1));
    }

    #[test]
    fn factor_embedding_suffices_at_rank_1() {
        // Every factor of "ab" occurs in "aab" — one-round simulation holds.
        assert!(simulates("ab", "aab", 1));
        // "ba" has factor ba which aab lacks… wait, aab has no "ba";
        // Spoiler picks ba.
        assert!(!simulates("ba", "aab", 1));
    }

    #[test]
    fn ep_sentences_transfer_along_simulation() {
        use fc_logic::eval::{holds, Assignment};
        use fc_logic::{Formula, Term};
        let v = |n: &str| Term::var(n);
        // EP battery (no negation, no ∀).
        let battery = vec![
            (
                Formula::exists(
                    &["x"],
                    Formula::eq_cat(v("x"), Term::Sym(b'a'), Term::Sym(b'a')),
                ),
                1u32,
            ),
            (
                Formula::exists(
                    &["x"],
                    Formula::eq_cat(v("x"), Term::Sym(b'a'), Term::Sym(b'b')),
                ),
                1,
            ),
            (
                Formula::exists(
                    &["x", "y"],
                    Formula::and([
                        Formula::eq_cat(v("x"), v("y"), v("y")),
                        Formula::eq_cat(v("y"), Term::Sym(b'a'), Term::Sym(b'b')),
                    ]),
                ),
                2,
            ),
        ];
        let sigma = Alphabet::ab();
        let words: Vec<fc_words::Word> = sigma.words_up_to(4).collect();
        for w in &words {
            for u in &words {
                let mut solver =
                    ExistentialSolver::new(GamePair::new(w.clone(), u.clone(), &sigma));
                for k in 1..=2u32 {
                    if !solver.simulates(k) {
                        continue;
                    }
                    let sw = fc_logic::FactorStructure::new(w.clone(), &sigma);
                    let su = fc_logic::FactorStructure::new(u.clone(), &sigma);
                    for (phi, rank) in &battery {
                        if *rank <= k && holds(phi, &sw, &Assignment::new()) {
                            assert!(
                                holds(phi, &su, &Assignment::new()),
                                "{w} ⇛_{k} {u} but EP sentence {phi} not transferred"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simulation_is_transitive_on_window() {
        let sigma = Alphabet::ab();
        let words: Vec<fc_words::Word> = sigma.words_up_to(3).collect();
        let k = 1u32;
        let sim: Vec<Vec<bool>> = words
            .iter()
            .map(|w| {
                words
                    .iter()
                    .map(|v| {
                        ExistentialSolver::new(GamePair::new(w.clone(), v.clone(), &sigma))
                            .simulates(k)
                    })
                    .collect()
            })
            .collect();
        for i in 0..words.len() {
            for j in 0..words.len() {
                for l in 0..words.len() {
                    if sim[i][j] && sim[j][l] {
                        assert!(
                            sim[i][l],
                            "⇛ not transitive: {} {} {}",
                            words[i], words[j], words[l]
                        );
                    }
                }
            }
        }
    }
}
