//! Partial isomorphisms between factor structures (Definition 3.1).
//!
//! `(ā, b̄)` is a partial isomorphism between 𝔄_w and 𝔅_v iff
//!
//! 1. for every constant symbol `c`: `aᵢ = c^𝔄 ⟺ bᵢ = c^𝔅`,
//! 2. `aᵢ = aⱼ ⟺ bᵢ = bⱼ`,
//! 3. `aᵢ = aⱼ·a_k ⟺ bᵢ = bⱼ·b_k` (as R∘ facts).
//!
//! When the constant vectors ⟨𝔄⟩, ⟨𝔅⟩ are appended to the tuples (as the
//! winning condition of §3 prescribes), condition 1 follows from condition
//! 2 — the checker still verifies it independently for defence in depth.

use fc_logic::{FactorId, FactorStructure};

/// A matched pair of chosen elements.
pub type Pair = (FactorId, FactorId);

/// The outcome of a partial-isomorphism check: either fine, or the first
/// violated condition with the offending indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsoViolation {
    /// Condition 1 violated at index `i` for constant `sym`.
    Constant { index: usize, sym: u8 },
    /// Condition 2 violated for indices `(i, j)`.
    Equality { i: usize, j: usize },
    /// Condition 3 violated for indices `(l, i, j)` (`a_l =? a_i·a_j`).
    Concat { l: usize, i: usize, j: usize },
}

/// Checks Definition 3.1 exhaustively over the given pairs.
pub fn check_partial_iso(
    a: &FactorStructure,
    b: &FactorStructure,
    pairs: &[Pair],
) -> Result<(), IsoViolation> {
    let n = pairs.len();
    // Condition 1: constants.
    for (idx, &(ai, bi)) in pairs.iter().enumerate() {
        for &sym in a.alphabet().symbols() {
            let ca = a.constant(sym);
            let cb = b.constant(sym);
            if (ai == ca) != (bi == cb) {
                return Err(IsoViolation::Constant { index: idx, sym });
            }
        }
        // ε constant.
        if (ai == a.epsilon()) != (bi == b.epsilon()) {
            return Err(IsoViolation::Constant { index: idx, sym: 0 });
        }
    }
    // Condition 2: equality pattern.
    for i in 0..n {
        for j in i + 1..n {
            if (pairs[i].0 == pairs[j].0) != (pairs[i].1 == pairs[j].1) {
                return Err(IsoViolation::Equality { i, j });
            }
        }
    }
    // Condition 3: concatenation facts.
    for l in 0..n {
        for i in 0..n {
            for j in 0..n {
                let lhs = a.concat_holds(pairs[l].0, pairs[i].0, pairs[j].0);
                let rhs = b.concat_holds(pairs[l].1, pairs[i].1, pairs[j].1);
                if lhs != rhs {
                    return Err(IsoViolation::Concat { l, i, j });
                }
            }
        }
    }
    Ok(())
}

/// Incremental check: assuming `pairs` is already a partial isomorphism, is
/// `pairs ∪ {new}` one too? Only conditions involving `new` are examined.
///
/// The constants conditions are implied when the constant vectors are among
/// `pairs` (as in every game state built by [`crate::arena::GamePair`]).
pub fn consistent_extension(
    a: &FactorStructure,
    b: &FactorStructure,
    pairs: &[Pair],
    new: Pair,
) -> bool {
    let (na, nb) = new;
    // Equality pattern against existing pairs.
    for &(ai, bi) in pairs {
        if (na == ai) != (nb == bi) {
            return false;
        }
    }
    // Concatenation triples involving the new pair in ≥ 1 position.
    // Build the extended list view lazily.
    let ext_len = pairs.len() + 1;
    let get = |i: usize| -> Pair {
        if i < pairs.len() {
            pairs[i]
        } else {
            new
        }
    };
    let newi = ext_len - 1;
    for l in 0..ext_len {
        for i in 0..ext_len {
            for j in 0..ext_len {
                if l != newi && i != newi && j != newi {
                    continue;
                }
                let (la, lb) = get(l);
                let (ia, ib) = get(i);
                let (ja, jb) = get(j);
                if a.concat_holds(la, ia, ja) != b.concat_holds(lb, ib, jb) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_words::Alphabet;

    fn st(w: &str) -> FactorStructure {
        FactorStructure::of_str(w, &Alphabet::ab())
    }

    fn id(s: &FactorStructure, u: &str) -> FactorId {
        s.id_of(u.as_bytes())
            .unwrap_or_else(|| panic!("{u} not a factor of {}", s.word()))
    }

    fn constant_pairs(a: &FactorStructure, b: &FactorStructure) -> Vec<Pair> {
        a.constants_vector()
            .into_iter()
            .zip(b.constants_vector())
            .collect()
    }

    #[test]
    fn constants_alone_form_partial_iso_for_same_alphabet_words() {
        let a = st("abab");
        let b = st("baab");
        let pairs = constant_pairs(&a, &b);
        assert_eq!(check_partial_iso(&a, &b, &pairs), Ok(()));
    }

    #[test]
    fn equality_pattern_violation() {
        let a = st("aa");
        let b = st("aa");
        let pairs = vec![
            (id(&a, "a"), id(&b, "a")),
            (id(&a, "a"), id(&b, "aa")), // same left, different right
        ];
        // The checker reports a violation — the constants condition also
        // trips here (a ↦ aa clashes with the seeded letter interpretation),
        // so accept either kind.
        assert!(check_partial_iso(&a, &b, &pairs).is_err());
    }

    #[test]
    fn concat_violation() {
        let a = st("aaa");
        let b = st("aa");
        // a-side: aa = a·a true; b-side: a = a·a false.
        let pairs = vec![(id(&a, "aa"), id(&b, "a")), (id(&a, "a"), id(&b, "a"))];
        // equality violated too (a-side distinct, b-side equal) — use
        // distinct b elements.
        let pairs2 = vec![(id(&a, "aa"), id(&b, "aa")), (id(&a, "a"), id(&b, "aa"))];
        assert!(check_partial_iso(&a, &b, &pairs).is_err());
        assert!(check_partial_iso(&a, &b, &pairs2).is_err());
    }

    #[test]
    fn constant_violation_detected() {
        let a = st("ab");
        let b = st("ab");
        // Map the constant a to something else without including constants.
        let pairs = vec![(a.constant(b'a'), id(&b, "b"))];
        assert!(matches!(
            check_partial_iso(&a, &b, &pairs),
            Err(IsoViolation::Constant { .. })
        ));
    }

    #[test]
    fn incremental_matches_full_check() {
        // Exhaustive: for small structures, every (pairs, new) combo agrees
        // with the full checker.
        let a = st("aba");
        let b = st("aab");
        let base = constant_pairs(&a, &b);
        assert_eq!(check_partial_iso(&a, &b, &base), Ok(()));
        let a_ids: Vec<FactorId> = a.universe().collect();
        let b_ids: Vec<FactorId> = b.universe().collect();
        for &x in &a_ids {
            for &y in &b_ids {
                let mut pairs = base.clone();
                if !consistent_extension(&a, &b, &pairs, (x, y)) {
                    pairs.push((x, y));
                    assert!(
                        check_partial_iso(&a, &b, &pairs).is_err(),
                        "x={x:?} y={y:?}"
                    );
                    continue;
                }
                pairs.push((x, y));
                assert_eq!(check_partial_iso(&a, &b, &pairs), Ok(()), "x={x:?} y={y:?}");
                // one more level
                for &x2 in &a_ids {
                    for &y2 in &b_ids {
                        let ok = consistent_extension(&a, &b, &pairs, (x2, y2));
                        let mut p2 = pairs.clone();
                        p2.push((x2, y2));
                        assert_eq!(
                            check_partial_iso(&a, &b, &p2).is_ok(),
                            ok,
                            "x2={x2:?} y2={y2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bottom_pairs_are_consistent() {
        let a = st("ab");
        let b = st("ba");
        let mut pairs = constant_pairs(&a, &b);
        assert!(consistent_extension(
            &a,
            &b,
            &pairs,
            (FactorId::BOTTOM, FactorId::BOTTOM)
        ));
        pairs.push((FactorId::BOTTOM, FactorId::BOTTOM));
        assert_eq!(check_partial_iso(&a, &b, &pairs), Ok(()));
        // ⊥ paired with a real element violates equality vs the ⊥ pair.
        assert!(!consistent_extension(
            &a,
            &b,
            &pairs,
            (FactorId::BOTTOM, b.epsilon())
        ));
    }
}
