//! Partial isomorphisms between factor structures (Definition 3.1).
//!
//! `(ā, b̄)` is a partial isomorphism between 𝔄_w and 𝔅_v iff
//!
//! 1. for every constant symbol `c`: `aᵢ = c^𝔄 ⟺ bᵢ = c^𝔅`,
//! 2. `aᵢ = aⱼ ⟺ bᵢ = bⱼ`,
//! 3. `aᵢ = aⱼ·a_k ⟺ bᵢ = bⱼ·b_k` (as R∘ facts).
//!
//! When the constant vectors ⟨𝔄⟩, ⟨𝔅⟩ are appended to the tuples (as the
//! winning condition of §3 prescribes), condition 1 follows from condition
//! 2 — the checker still verifies it independently for defence in depth.

use fc_logic::{ConcatOracle, FactorId, FactorStructure};

/// A matched pair of chosen elements.
pub type Pair = (FactorId, FactorId);

/// Packs a pair into one `u64` (𝔄-id in the high half). The packing is
/// order-preserving: `pack(p) < pack(q) ⟺ p < q` lexicographically, so a
/// sorted packed state is a sorted pair state.
#[inline]
pub fn pack_pair(p: Pair) -> u64 {
    ((p.0 .0 as u64) << 32) | p.1 .0 as u64
}

/// Inverse of [`pack_pair`].
#[inline]
pub fn unpack_pair(x: u64) -> Pair {
    (FactorId((x >> 32) as u32), FactorId(x as u32))
}

/// The outcome of a partial-isomorphism check: either fine, or the first
/// violated condition with the offending indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsoViolation {
    /// Condition 1 violated at index `i` for constant `sym`.
    Constant { index: usize, sym: u8 },
    /// Condition 2 violated for indices `(i, j)`.
    Equality { i: usize, j: usize },
    /// Condition 3 violated for indices `(l, i, j)` (`a_l =? a_i·a_j`).
    Concat { l: usize, i: usize, j: usize },
}

/// Checks Definition 3.1 exhaustively over the given pairs.
pub fn check_partial_iso(
    a: &FactorStructure,
    b: &FactorStructure,
    pairs: &[Pair],
) -> Result<(), IsoViolation> {
    let n = pairs.len();
    // Condition 1: constants.
    for (idx, &(ai, bi)) in pairs.iter().enumerate() {
        for &sym in a.alphabet().symbols() {
            let ca = a.constant(sym);
            let cb = b.constant(sym);
            if (ai == ca) != (bi == cb) {
                return Err(IsoViolation::Constant { index: idx, sym });
            }
        }
        // ε constant.
        if (ai == a.epsilon()) != (bi == b.epsilon()) {
            return Err(IsoViolation::Constant { index: idx, sym: 0 });
        }
    }
    // Condition 2: equality pattern.
    for i in 0..n {
        for j in i + 1..n {
            if (pairs[i].0 == pairs[j].0) != (pairs[i].1 == pairs[j].1) {
                return Err(IsoViolation::Equality { i, j });
            }
        }
    }
    // Condition 3: concatenation facts.
    for l in 0..n {
        for i in 0..n {
            for j in 0..n {
                let lhs = a.concat_holds(pairs[l].0, pairs[i].0, pairs[j].0);
                let rhs = b.concat_holds(pairs[l].1, pairs[i].1, pairs[j].1);
                if lhs != rhs {
                    return Err(IsoViolation::Concat { l, i, j });
                }
            }
        }
    }
    Ok(())
}

/// Incremental check: assuming `pairs` is already a partial isomorphism, is
/// `pairs ∪ {new}` one too? Only conditions involving `new` are examined.
///
/// The constants conditions are implied when the constant vectors are among
/// `pairs` (as in every game state built by [`crate::arena::GamePair`]).
pub fn consistent_extension(
    a: &FactorStructure,
    b: &FactorStructure,
    pairs: &[Pair],
    new: Pair,
) -> bool {
    extension_ok(a, b, |i| pairs[i], pairs.len(), new)
}

/// [`consistent_extension`] over a game state split into the constant
/// seeding (`base`, plain pairs) and the packed played pairs (`played`) —
/// the solver's hot path, avoiding any concatenation of the two slices.
pub fn consistent_extension_seeded(
    a: &FactorStructure,
    b: &FactorStructure,
    base: &[Pair],
    played: &[u64],
    new: Pair,
) -> bool {
    let nb = base.len();
    extension_ok(
        a,
        b,
        |i| {
            if i < nb {
                base[i]
            } else {
                unpack_pair(played[i - nb])
            }
        },
        nb + played.len(),
        new,
    )
}

/// Second-order incremental check, the guided solver's hot path
/// (docs/SOLVER.md §9): assuming `base ∪ {new}` is consistent (the seed
/// compatibility precomputed per response candidate) **and** `base ∪
/// played` is consistent (the invariant of every reachable game state),
/// decides whether `base ∪ played ∪ {new}` is consistent. Only the
/// conditions mentioning both `new` and at least one played pair remain:
/// the equality pattern of `new` against `played`, and every concat
/// triple whose slots include `new` and touch `played`. For a state with
/// `p` played pairs over a `b`-pair seeding this is ~`3p(b+p)` probes
/// instead of the full incremental check's `3(b+p)² + 3(b+p) + 1`.
///
/// Soundness of the split: Definition 3.1 quantifies universally over
/// triples of pairs, so consistency of a set is exactly the conjunction
/// of its per-triple conditions — partitioning the triples between the
/// precomputed part (all slots in `base ∪ {new}`) and this delta (some
/// slot in `played`) loses nothing. `partial_iso_delta_matches_full` in
/// the test module replays the claim exhaustively.
pub fn consistent_extension_delta(
    a: &FactorStructure,
    b: &FactorStructure,
    base: &[Pair],
    played: &[u64],
    new: Pair,
) -> bool {
    use fc_logic::ConcatView as V;
    match (a.concat_view(), b.concat_view()) {
        (V::Dense(x), V::Dense(y)) => extension_delta_on(x, y, base, played, new),
        (V::Dense(x), V::Succinct(y)) => extension_delta_on(x, y, base, played, new),
        (V::Succinct(x), V::Dense(y)) => extension_delta_on(x, y, base, played, new),
        (V::Succinct(x), V::Succinct(y)) => extension_delta_on(x, y, base, played, new),
    }
}

/// Monomorphized body of [`consistent_extension_delta`]. The slot space
/// is indexed `0..nb` = base, `nb..nb+np` = played, `last` = new; the
/// triple loop skips (with integer compares, no table probes) every
/// triple that does not mention `new` or does not touch `played`.
fn extension_delta_on(
    a: impl ConcatOracle,
    b: impl ConcatOracle,
    base: &[Pair],
    played: &[u64],
    new: Pair,
) -> bool {
    let (na, nb_el) = new;
    let nb = base.len();
    let np = played.len();
    // Equality pattern against the played pairs (base was covered by the
    // seed-compatibility precompute).
    for &q in played {
        let (pa, pb) = unpack_pair(q);
        if (na == pa) != (nb_el == pb) {
            return false;
        }
    }
    let last = nb + np;
    let total = last + 1;
    let get = |i: usize| {
        if i < nb {
            base[i]
        } else if i < last {
            unpack_pair(played[i - nb])
        } else {
            new
        }
    };
    let in_played = |i: usize| i >= nb && i < last;
    for l in 0..total {
        for i in 0..total {
            for j in 0..total {
                let has_new = l == last || i == last || j == last;
                if !has_new {
                    continue; // forced by consistency of base ∪ played
                }
                if !(in_played(l) || in_played(i) || in_played(j)) {
                    continue; // forced by seed compatibility of base ∪ {new}
                }
                let (la, lb) = get(l);
                let (ia, ib) = get(i);
                let (ja, jb) = get(j);
                if a.concat_holds(la, ia, ja) != b.concat_holds(lb, ib, jb) {
                    return false;
                }
            }
        }
    }
    true
}

/// Shared core of the incremental checks: `get(0..n)` enumerates the
/// existing pairs; `new` is the candidate extension. Instead of filtering
/// the (n+1)³ triple space for triples touching `new` (the old O(n³)
/// loop), the three positions `new` can occupy are enumerated directly —
/// (n+1)² + n(n+1) + n² = 3n² + 3n + 1 triples, each an O(1) concat-table
/// probe.
///
/// The backend dispatch happens here, once per extension check: the body
/// is generic over two [`ConcatOracle`]s, so the dominant dense×dense
/// instantiation keeps its probes as bare table reads (per-probe dispatch
/// through `FactorStructure::concat_holds` costs ~35% on the solver).
#[inline]
fn extension_ok(
    a: &FactorStructure,
    b: &FactorStructure,
    get: impl Fn(usize) -> Pair,
    n: usize,
    new: Pair,
) -> bool {
    use fc_logic::ConcatView as V;
    match (a.concat_view(), b.concat_view()) {
        (V::Dense(x), V::Dense(y)) => extension_ok_on(x, y, get, n, new),
        (V::Dense(x), V::Succinct(y)) => extension_ok_on(x, y, get, n, new),
        (V::Succinct(x), V::Dense(y)) => extension_ok_on(x, y, get, n, new),
        (V::Succinct(x), V::Succinct(y)) => extension_ok_on(x, y, get, n, new),
    }
}

/// Monomorphized body of [`extension_ok`].
fn extension_ok_on(
    a: impl ConcatOracle,
    b: impl ConcatOracle,
    get: impl Fn(usize) -> Pair,
    n: usize,
    new: Pair,
) -> bool {
    let (na, nb) = new;
    // Equality pattern against existing pairs.
    for i in 0..n {
        let (ai, bi) = get(i);
        if (na == ai) != (nb == bi) {
            return false;
        }
    }
    // Triples with `new` in the result slot: (new, i, j) over the extension.
    let ext = |i: usize| if i < n { get(i) } else { new };
    for i in 0..=n {
        let (ia, ib) = ext(i);
        for j in 0..=n {
            let (ja, jb) = ext(j);
            if a.concat_holds(na, ia, ja) != b.concat_holds(nb, ib, jb) {
                return false;
            }
        }
    }
    // `new` in the left operand slot, result ranging over the old pairs.
    for l in 0..n {
        let (la, lb) = get(l);
        for j in 0..=n {
            let (ja, jb) = ext(j);
            if a.concat_holds(la, na, ja) != b.concat_holds(lb, nb, jb) {
                return false;
            }
        }
    }
    // `new` in the right operand slot only.
    for l in 0..n {
        let (la, lb) = get(l);
        for i in 0..n {
            let (ia, ib) = get(i);
            if a.concat_holds(la, ia, na) != b.concat_holds(lb, ib, nb) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_words::Alphabet;

    fn st(w: &str) -> FactorStructure {
        FactorStructure::of_str(w, &Alphabet::ab())
    }

    fn id(s: &FactorStructure, u: &str) -> FactorId {
        s.id_of(u.as_bytes())
            .unwrap_or_else(|| panic!("{u} not a factor of {}", s.word()))
    }

    fn constant_pairs(a: &FactorStructure, b: &FactorStructure) -> Vec<Pair> {
        a.constants_vector()
            .into_iter()
            .zip(b.constants_vector())
            .collect()
    }

    #[test]
    fn constants_alone_form_partial_iso_for_same_alphabet_words() {
        let a = st("abab");
        let b = st("baab");
        let pairs = constant_pairs(&a, &b);
        assert_eq!(check_partial_iso(&a, &b, &pairs), Ok(()));
    }

    #[test]
    fn equality_pattern_violation() {
        let a = st("aa");
        let b = st("aa");
        let pairs = vec![
            (id(&a, "a"), id(&b, "a")),
            (id(&a, "a"), id(&b, "aa")), // same left, different right
        ];
        // The checker reports a violation — the constants condition also
        // trips here (a ↦ aa clashes with the seeded letter interpretation),
        // so accept either kind.
        assert!(check_partial_iso(&a, &b, &pairs).is_err());
    }

    #[test]
    fn concat_violation() {
        let a = st("aaa");
        let b = st("aa");
        // a-side: aa = a·a true; b-side: a = a·a false.
        let pairs = vec![(id(&a, "aa"), id(&b, "a")), (id(&a, "a"), id(&b, "a"))];
        // equality violated too (a-side distinct, b-side equal) — use
        // distinct b elements.
        let pairs2 = vec![(id(&a, "aa"), id(&b, "aa")), (id(&a, "a"), id(&b, "aa"))];
        assert!(check_partial_iso(&a, &b, &pairs).is_err());
        assert!(check_partial_iso(&a, &b, &pairs2).is_err());
    }

    #[test]
    fn constant_violation_detected() {
        let a = st("ab");
        let b = st("ab");
        // Map the constant a to something else without including constants.
        let pairs = vec![(a.constant(b'a'), id(&b, "b"))];
        assert!(matches!(
            check_partial_iso(&a, &b, &pairs),
            Err(IsoViolation::Constant { .. })
        ));
    }

    #[test]
    fn incremental_matches_full_check() {
        // Exhaustive: for small structures, every (pairs, new) combo agrees
        // with the full checker.
        let a = st("aba");
        let b = st("aab");
        let base = constant_pairs(&a, &b);
        assert_eq!(check_partial_iso(&a, &b, &base), Ok(()));
        let a_ids: Vec<FactorId> = a.universe().collect();
        let b_ids: Vec<FactorId> = b.universe().collect();
        for &x in &a_ids {
            for &y in &b_ids {
                let mut pairs = base.clone();
                if !consistent_extension(&a, &b, &pairs, (x, y)) {
                    pairs.push((x, y));
                    assert!(
                        check_partial_iso(&a, &b, &pairs).is_err(),
                        "x={x:?} y={y:?}"
                    );
                    continue;
                }
                pairs.push((x, y));
                assert_eq!(check_partial_iso(&a, &b, &pairs), Ok(()), "x={x:?} y={y:?}");
                // one more level
                for &x2 in &a_ids {
                    for &y2 in &b_ids {
                        let ok = consistent_extension(&a, &b, &pairs, (x2, y2));
                        let mut p2 = pairs.clone();
                        p2.push((x2, y2));
                        assert_eq!(
                            check_partial_iso(&a, &b, &p2).is_ok(),
                            ok,
                            "x2={x2:?} y2={y2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_iso_delta_matches_full() {
        // Exhaustive: whenever base ∪ {new} and base ∪ played are both
        // consistent, the delta check agrees with the full incremental
        // check on base ∪ played ∪ {new} — for every played pair and
        // every candidate extension of two small structures.
        let a = st("abaab");
        let b = st("aabab");
        let base = constant_pairs(&a, &b);
        let a_ids: Vec<FactorId> = a.universe().collect();
        let b_ids: Vec<FactorId> = b.universe().collect();
        let mut checked = 0u64;
        for &x in &a_ids {
            for &y in &b_ids {
                if !consistent_extension(&a, &b, &base, (x, y)) {
                    continue; // (x, y) is the played pair: must be consistent
                }
                let played = [pack_pair((x, y))];
                let mut with_played = base.clone();
                with_played.push((x, y));
                for &x2 in &a_ids {
                    for &y2 in &b_ids {
                        if !consistent_extension(&a, &b, &base, (x2, y2)) {
                            continue; // new must be seed-compatible
                        }
                        let full = consistent_extension(&a, &b, &with_played, (x2, y2));
                        let delta = consistent_extension_delta(&a, &b, &base, &played, (x2, y2));
                        assert_eq!(full, delta, "x={x:?} y={y:?} x2={x2:?} y2={y2:?}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 100, "window too small to be meaningful");
    }

    #[test]
    fn bottom_pairs_are_consistent() {
        let a = st("ab");
        let b = st("ba");
        let mut pairs = constant_pairs(&a, &b);
        assert!(consistent_extension(
            &a,
            &b,
            &pairs,
            (FactorId::BOTTOM, FactorId::BOTTOM)
        ));
        pairs.push((FactorId::BOTTOM, FactorId::BOTTOM));
        assert_eq!(check_partial_iso(&a, &b, &pairs), Ok(()));
        // ⊥ paired with a real element violates equality vs the ⊥ pair.
        assert!(!consistent_extension(
            &a,
            &b,
            &pairs,
            (FactorId::BOTTOM, b.epsilon())
        ));
    }
}
