//! ≡_k partitions of word sets (the finite-window analogue of rank-k
//! Hintikka types).
//!
//! By Theorem 3.5, `≡_k` is an equivalence relation on words, with one
//! class per rank-k type realised. Partitioning a window of words into
//! classes quantifies "how much FC can see at rank k" — used by the
//! experiment harness to chart class counts against `k` and word length.
//!
//! All entry points run on the bulk engine of [`crate::batch`]: one
//! [`StructureArena`] over the window's union alphabet builds each word's
//! structure exactly once, fingerprints refute cross-class pairs without a
//! game, and the verdict memo makes symmetric comparisons free. Every word
//! of the window enters one arena over the *union* Σ; this is sound
//! because padding Σ with letters absent from both words of a pair never
//! changes a verdict (the extra (⊥, ⊥) constant pairs only pre-pin the
//! already-forced ⊥ ↦ ⊥ response — see [`crate::batch`] and the
//! `alphabet_padding_is_verdict_invariant` regression test). The
//! definitional per-pair loop is kept as [`classes_naive`] for the
//! differential suite and the ablation benches.

use crate::batch::{BatchSolver, BatchStats, StructureArena, WordId};
use crate::solver::EfSolver;
use crate::GamePair;
use fc_words::Word;

/// Partitions `words` into ≡_k classes (each class keeps input order;
/// classes ordered by first member).
pub fn classes(words: &[Word], k: u32) -> Vec<Vec<Word>> {
    classes_with_stats(words, k).0
}

/// [`classes`] plus the batch engine's counters, for report rows.
pub fn classes_with_stats(words: &[Word], k: u32) -> (Vec<Vec<Word>>, BatchStats) {
    let (mut batch, ids) = batch_over(words);
    let partition = batch.classify(&ids, k);
    (materialize(words, partition), batch.stats())
}

/// [`classes`] with the per-candidate representative comparisons solved on
/// `threads` workers. Output is byte-identical to the sequential
/// partition (at most one representative can match any candidate).
pub fn classes_parallel(words: &[Word], k: u32, threads: usize) -> Vec<Vec<Word>> {
    let (mut batch, ids) = batch_over(words);
    let partition = batch.classify_par(&ids, k, threads);
    materialize(words, partition)
}

/// The definitional representative loop: a fresh solver and two fresh
/// structures per comparison. Kept as the differential baseline for the
/// batch engine (`classes == classes_naive` on the exhaustive window) and
/// as the "before" leg of the P9 bench.
pub fn classes_naive(words: &[Word], k: u32) -> Vec<Vec<Word>> {
    let mut classes: Vec<Vec<Word>> = Vec::new();
    'next: for w in words {
        for class in classes.iter_mut() {
            let rep = &class[0];
            let mut solver = EfSolver::new(GamePair::new(
                rep.clone(),
                w.clone(),
                &fc_words::Alphabet::from_symbols(b""),
            ));
            if solver.equivalent(k) {
                class.push(w.clone());
                continue 'next;
            }
        }
        classes.push(vec![w.clone()]);
    }
    classes
}

/// Class count only (cheaper to report).
pub fn class_count(words: &[Word], k: u32) -> usize {
    classes(words, k).len()
}

/// Checks that `≡_k` behaved as an equivalence relation on the window
/// (reflexive by construction; symmetric/transitivity spot-check via
/// cross-comparisons). Returns a violating triple if any — which would
/// contradict Theorem 3.5.
///
/// The verdict matrix is produced by [`BatchSolver::all_pairs`]: only the
/// upper triangle is solved (the memo mirrors the lower half), the
/// diagonal is reflexivity, and fingerprint-refuted pairs never reach the
/// solver. The symmetry leg of the check is therefore structural; the
/// transitivity scan over the matrix is unchanged.
pub fn check_equivalence_laws(words: &[Word], k: u32) -> Option<(Word, Word, Word)> {
    let (mut batch, ids) = batch_over(words);
    let eq = batch.all_pairs(&ids, k);
    let n = words.len();
    for i in 0..n {
        if !eq[i][i] {
            return Some((words[i].clone(), words[i].clone(), words[i].clone()));
        }
        for j in 0..n {
            if eq[i][j] != eq[j][i] {
                return Some((words[i].clone(), words[j].clone(), words[j].clone()));
            }
            for l in 0..n {
                if eq[i][j] && eq[j][l] && !eq[i][l] {
                    return Some((words[i].clone(), words[j].clone(), words[l].clone()));
                }
            }
        }
    }
    None
}

/// One batch solver over the window's union alphabet, plus the interned
/// ids aligned with `words`.
fn batch_over(words: &[Word]) -> (BatchSolver, Vec<WordId>) {
    let (arena, ids) = StructureArena::for_words(words);
    (BatchSolver::new(arena), ids)
}

/// Turns a position partition back into word classes.
fn materialize(words: &[Word], partition: Vec<Vec<usize>>) -> Vec<Vec<Word>> {
    partition
        .into_iter()
        .map(|class| class.into_iter().map(|pos| words[pos].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_words::Alphabet;

    #[test]
    fn partition_of_short_binary_words() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(2).collect();
        // Rank 2 should distinguish all 7 words of length ≤ 2 pairwise…
        let c2 = classes(&words, 2);
        // … and rank 0 at most groups by occurring-symbol sets.
        let c0 = classes(&words, 0);
        assert!(c2.len() >= c0.len());
        assert!(c0.len() <= 4); // symbol sets: {}, {a}, {b}, {a,b}
    }

    #[test]
    fn rank_zero_groups_by_alphabet() {
        let words = vec![
            Word::from("a"),
            Word::from("aa"),
            Word::from("b"),
            Word::from("ab"),
            Word::from("ba"),
        ];
        let c = classes(&words, 0);
        // {a, aa}, {b}, {ab, ba}
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn batch_partition_matches_naive() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(3).collect();
        for k in 0..=2u32 {
            assert_eq!(classes(&words, k), classes_naive(&words, k), "k={k}");
        }
    }

    #[test]
    fn parallel_partition_matches_sequential() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(3).collect();
        for k in 0..=2u32 {
            let seq = classes(&words, k);
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    classes_parallel(&words, k, threads),
                    seq,
                    "k={k} t={threads}"
                );
            }
        }
    }

    #[test]
    fn stats_report_batch_activity() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(3).collect();
        let (_, stats) = classes_with_stats(&words, 1);
        // Lazy arena: at most one structure per word, and the unary words
        // the arithmetic tier fully absorbs may build none at all.
        assert!(stats.structures_built <= words.len() as u64);
        assert!(stats.structures_built > 0);
        assert!(stats.fingerprint_refutations > 0);
        assert!(stats.pairs_solved > 0);
    }

    #[test]
    fn equivalence_laws_hold_on_window() {
        let sigma = Alphabet::unary();
        let words: Vec<Word> = sigma.words_up_to(6).collect();
        assert_eq!(check_equivalence_laws(&words, 1), None);
    }

    #[test]
    fn class_count_monotone_in_rank() {
        let sigma = Alphabet::unary();
        let words: Vec<Word> = sigma.words_up_to(8).collect();
        let c0 = class_count(&words, 0);
        let c1 = class_count(&words, 1);
        let c2 = class_count(&words, 2);
        assert!(c0 <= c1 && c1 <= c2, "{c0} {c1} {c2}");
    }
}
