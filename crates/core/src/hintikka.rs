//! ≡_k partitions of word sets (the finite-window analogue of rank-k
//! Hintikka types).
//!
//! By Theorem 3.5, `≡_k` is an equivalence relation on words, with one
//! class per rank-k type realised. Partitioning a window of words into
//! classes quantifies "how much FC can see at rank k" — used by the
//! experiment harness to chart class counts against `k` and word length.

use crate::solver::EfSolver;
use crate::GamePair;
use fc_words::Word;

/// Partitions `words` into ≡_k classes (each class keeps input order).
pub fn classes(words: &[Word], k: u32) -> Vec<Vec<Word>> {
    let mut classes: Vec<Vec<Word>> = Vec::new();
    'next: for w in words {
        for class in classes.iter_mut() {
            let rep = &class[0];
            let mut solver = EfSolver::new(GamePair::new(
                rep.clone(),
                w.clone(),
                &fc_words::Alphabet::from_symbols(b""),
            ));
            if solver.equivalent(k) {
                class.push(w.clone());
                continue 'next;
            }
        }
        classes.push(vec![w.clone()]);
    }
    classes
}

/// Class count only (cheaper to report).
pub fn class_count(words: &[Word], k: u32) -> usize {
    classes(words, k).len()
}

/// Checks that `≡_k` behaved as an equivalence relation on the window
/// (reflexive by construction; symmetric/transitivity spot-check via
/// cross-comparisons). Returns a violating triple if any — which would
/// contradict Theorem 3.5.
pub fn check_equivalence_laws(words: &[Word], k: u32) -> Option<(Word, Word, Word)> {
    let n = words.len();
    let mut eq = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut solver = EfSolver::new(GamePair::new(
                words[i].clone(),
                words[j].clone(),
                &fc_words::Alphabet::from_symbols(b""),
            ));
            eq[i][j] = solver.equivalent(k);
        }
    }
    for i in 0..n {
        if !eq[i][i] {
            return Some((words[i].clone(), words[i].clone(), words[i].clone()));
        }
        for j in 0..n {
            if eq[i][j] != eq[j][i] {
                return Some((words[i].clone(), words[j].clone(), words[j].clone()));
            }
            for l in 0..n {
                if eq[i][j] && eq[j][l] && !eq[i][l] {
                    return Some((words[i].clone(), words[j].clone(), words[l].clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_words::Alphabet;

    #[test]
    fn partition_of_short_binary_words() {
        let sigma = Alphabet::ab();
        let words: Vec<Word> = sigma.words_up_to(2).collect();
        // Rank 2 should distinguish all 7 words of length ≤ 2 pairwise…
        let c2 = classes(&words, 2);
        // … and rank 0 at most groups by occurring-symbol sets.
        let c0 = classes(&words, 0);
        assert!(c2.len() >= c0.len());
        assert!(c0.len() <= 4); // symbol sets: {}, {a}, {b}, {a,b}
    }

    #[test]
    fn rank_zero_groups_by_alphabet() {
        let words = vec![
            Word::from("a"),
            Word::from("aa"),
            Word::from("b"),
            Word::from("ab"),
            Word::from("ba"),
        ];
        let c = classes(&words, 0);
        // {a, aa}, {b}, {ab, ba}
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn equivalence_laws_hold_on_window() {
        let sigma = Alphabet::unary();
        let words: Vec<Word> = sigma.words_up_to(6).collect();
        assert_eq!(check_equivalence_laws(&words, 1), None);
    }

    #[test]
    fn class_count_monotone_in_rank() {
        let sigma = Alphabet::unary();
        let words: Vec<Word> = sigma.words_up_to(8).collect();
        let c0 = class_count(&words, 0);
        let c1 = class_count(&words, 1);
        let c2 = class_count(&words, 2);
        assert!(c0 <= c1 && c1 <= c2, "{c0} {c1} {c2}");
    }
}
