//! Lock-sharded structure interning for concurrent engines.
//!
//! [`crate::batch::StructureArena`] amortizes structure construction
//! across a *single-threaded* bulk workload: one `&mut` owner interns
//! words and hands `Arc`-shared structures to worker threads. A
//! long-running service inverts that shape — many threads intern and look
//! up concurrently against one shared store — so this module provides the
//! arena's service form: [`ShardedArena`], `S` independently locked shards
//! each holding a content-deduplicated `word → Arc<FactorStructure>` map.
//!
//! Two deliberate differences from `StructureArena`:
//!
//! - **per-word alphabets** — an arena fixes one Σ so fingerprints stay
//!   comparable; a document store holds unrelated corpus documents, so
//!   each structure is built over its own symbol set (exactly
//!   [`FactorStructure::of_word`]), with the dense/succinct backend
//!   auto-selected by word length unless a backend is forced;
//! - **interior locking** — `intern` takes `&self`; the shard index is a
//!   hash of the word's bytes, so two threads interning different words
//!   almost never contend, and re-interning an existing word takes only a
//!   read lock.

use fc_logic::{BackendKind, FactorStructure};
use fc_words::Word;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of shards (a power of two).
const ARENA_SHARDS: usize = 16;

/// A handle to an interned structure: shard index plus slot within the
/// shard. Handles are stable for the arena's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardRef {
    shard: u32,
    slot: u32,
}

struct Shard {
    structures: Vec<Arc<FactorStructure>>,
    index: HashMap<Word, u32>,
}

/// A concurrently shareable, content-deduplicating store of factor
/// structures.
pub struct ShardedArena {
    shards: Vec<RwLock<Shard>>,
    /// Forced backend for every interned word (`None` = word-length
    /// automatic choice).
    backend: Option<BackendKind>,
    structures_built: AtomicU64,
    intern_hits: AtomicU64,
}

impl ShardedArena {
    /// An empty arena with automatic backend selection.
    pub fn new() -> ShardedArena {
        ShardedArena::with_backend(None)
    }

    /// An empty arena that forces every structure onto `backend`
    /// (`None` = automatic).
    pub fn with_backend(backend: Option<BackendKind>) -> ShardedArena {
        ShardedArena {
            shards: (0..ARENA_SHARDS)
                .map(|_| {
                    RwLock::new(Shard {
                        structures: Vec::new(),
                        index: HashMap::new(),
                    })
                })
                .collect(),
            backend,
            structures_built: AtomicU64::new(0),
            intern_hits: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(word: &Word) -> usize {
        // FNV-1a over the word bytes; top bits select the shard.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in word.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h >> 32) as usize & (ARENA_SHARDS - 1)
    }

    /// Interns `word`, building its structure on first sight; repeat
    /// interns of the same content return the existing handle under a read
    /// lock.
    pub fn intern(&self, word: &Word) -> ShardRef {
        let shard_idx = Self::shard_of(word);
        if let Some(&slot) = self.shards[shard_idx].read().unwrap().index.get(word) {
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
            return ShardRef {
                shard: shard_idx as u32,
                slot,
            };
        }
        // Build outside the write lock: succinct construction on a long
        // document must not block the shard's readers.
        let structure = Arc::new(match self.backend {
            Some(kind) => {
                let sigma = fc_words::Alphabet::from_symbols(&word.symbols());
                FactorStructure::with_backend(word.clone(), &sigma, kind)
            }
            None => FactorStructure::of_word(word.clone()),
        });
        let mut shard = self.shards[shard_idx].write().unwrap();
        if let Some(&slot) = shard.index.get(word) {
            // A racing thread interned it first; ours is dropped.
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
            return ShardRef {
                shard: shard_idx as u32,
                slot,
            };
        }
        let slot = shard.structures.len() as u32;
        shard.structures.push(structure);
        shard.index.insert(word.clone(), slot);
        self.structures_built.fetch_add(1, Ordering::Relaxed);
        ShardRef {
            shard: shard_idx as u32,
            slot,
        }
    }

    /// The structure behind a handle.
    ///
    /// # Panics
    /// Panics on a handle from a different arena (out-of-range slot).
    pub fn structure(&self, r: ShardRef) -> Arc<FactorStructure> {
        Arc::clone(&self.shards[r.shard as usize].read().unwrap().structures[r.slot as usize])
    }

    /// The handle for `word`, if it has been interned.
    pub fn lookup(&self, word: &Word) -> Option<ShardRef> {
        let shard_idx = Self::shard_of(word);
        let shard = self.shards[shard_idx].read().unwrap();
        shard.index.get(word).map(|&slot| ShardRef {
            shard: shard_idx as u32,
            slot,
        })
    }

    /// Number of distinct structures resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().structures.len())
            .sum()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes held by the resident structures (backend accounting,
    /// see `FactorStructure::memory_bytes`).
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap()
                    .structures
                    .iter()
                    .map(|st| st.memory_bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Structures built (== distinct words interned).
    pub fn structures_built(&self) -> u64 {
        self.structures_built.load(Ordering::Relaxed)
    }

    /// Intern calls answered by dedup instead of construction.
    pub fn intern_hits(&self) -> u64 {
        self.intern_hits.load(Ordering::Relaxed)
    }

    /// Number of shards (for stats displays).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl Default for ShardedArena {
    fn default() -> ShardedArena {
        ShardedArena::new()
    }
}

impl std::fmt::Debug for ShardedArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedArena({} structures, {} dedup hits, {} B)",
            self.len(),
            self.intern_hits(),
            self.memory_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_by_content() {
        let arena = ShardedArena::new();
        let a = arena.intern(&Word::from("abab"));
        let b = arena.intern(&Word::from("abab"));
        let c = arena.intern(&Word::from("baba"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.structures_built(), 2);
        assert_eq!(arena.intern_hits(), 1);
        assert!(Arc::ptr_eq(&arena.structure(a), &arena.structure(b)));
    }

    #[test]
    fn backend_is_auto_selected_by_length() {
        let arena = ShardedArena::new();
        let short = arena.intern(&Word::from("ab"));
        let long = arena.intern(&Word::from("ab").pow(200));
        assert_eq!(
            arena.structure(short).backend_kind(),
            BackendKind::Dense,
            "short words stay dense"
        );
        assert_eq!(
            arena.structure(long).backend_kind(),
            BackendKind::Succinct,
            "long words go succinct"
        );
    }

    #[test]
    fn concurrent_interns_build_each_structure_once() {
        let arena = ShardedArena::new();
        let words: Vec<Word> = (0..64)
            .map(|i| {
                Word::from("ab")
                    .pow(1 + i % 8)
                    .concat(&Word::from("a").pow(i / 8))
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for w in &words {
                        let r = arena.intern(w);
                        assert_eq!(arena.structure(r).word(), w);
                    }
                });
            }
        });
        let distinct: std::collections::HashSet<&Word> = words.iter().collect();
        assert_eq!(arena.len(), distinct.len());
        assert_eq!(arena.structures_built(), distinct.len() as u64);
        assert_eq!(
            arena.intern_hits(),
            8 * words.len() as u64 - distinct.len() as u64
        );
        for w in &words {
            assert!(arena.lookup(w).is_some());
        }
        assert_eq!(arena.lookup(&Word::from("zzz")), None);
    }
}
