//! Alphabet-permutation canonicalization of word pairs.
//!
//! `≡_k` is invariant under renaming letters: a bijection `π : Σ → Σ'`
//! lifts factor-wise to an isomorphism `𝔄_w ≅ 𝔄_{π(w)}` (it maps the
//! constant `c^𝔄` to `π(c)^𝔄`, preserves equality trivially, and
//! preserves `R∘` because `u = x·y ⟺ π(u) = π(x)·π(y)`), and isomorphic
//! structures are indistinguishable by EF games. `≡_k` is also symmetric
//! (swap the roles of Spoiler's two boards). So the verdict of
//! `(w, v, k)` is a function of the **canonical pair**: the
//! lexicographically least element of the orbit of `(w, v)` under letter
//! renaming and argument swap.
//!
//! This module computes that representative by first-occurrence
//! relabeling — scan `w` then `v`, give the first distinct letter the
//! code `a`, the second `b`, … — which picks one permutation per orbit
//! deterministically, then takes the smaller of the relabeled `(w, v)`
//! and `(v, w)`. The batch engine memoizes verdicts under the canonical
//! key, so symmetric pairs (`aabb` vs `bbaa` against `bbaa` vs `aabb`,
//! or any π-image) cost one game instead of many; `fc serve` uses the
//! canonical fingerprint to share root verdicts across renamed requests
//! (docs/SOLVER.md §9).
//!
//! Pairs over more than [`CANON_MAX_ALPHABET`] distinct letters are left
//! alone (`None`): the target codes `a…z` would collide with arbitrary
//! bytes. Callers skip the collapse — a missing canonicalization only
//! loses sharing, never soundness.

/// Largest joint-alphabet size the relabeling handles.
pub const CANON_MAX_ALPHABET: usize = 26;

/// Relabels the letters of `(w, v)` by first occurrence (scanning `w`
/// then `v`): the i-th distinct letter becomes `b'a' + i`. Returns `None`
/// when the joint alphabet exceeds [`CANON_MAX_ALPHABET`].
pub fn relabel(w: &[u8], v: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let mut map = [0u8; 256];
    let mut seen = [false; 256];
    let mut next = 0usize;
    for &c in w.iter().chain(v.iter()) {
        if !seen[c as usize] {
            if next >= CANON_MAX_ALPHABET {
                return None;
            }
            map[c as usize] = b'a' + next as u8;
            seen[c as usize] = true;
            next += 1;
        }
    }
    let apply = |s: &[u8]| s.iter().map(|&c| map[c as usize]).collect::<Vec<u8>>();
    Some((apply(w), apply(v)))
}

/// The canonical representative of the orbit of `(w, v)` under letter
/// renaming and swap: the lexicographically smaller of `relabel(w, v)`
/// and `relabel(v, w)` (compared as `(first, second)` pairs).
pub fn canonical_pair(w: &[u8], v: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let fwd = relabel(w, v)?;
    let rev = relabel(v, w)?;
    Some(fwd.min(rev))
}

/// A self-delimiting byte key for the canonical pair: `len(w') || w' || v'`
/// with an 8-byte little-endian length prefix (no in-band separator, so
/// distinct pairs can never collide). Used as the batch engine's
/// cross-pair memo key.
pub fn canonical_key(w: &[u8], v: &[u8]) -> Option<Box<[u8]>> {
    let (cw, cv) = canonical_pair(w, v)?;
    let mut key = Vec::with_capacity(8 + cw.len() + cv.len());
    key.extend_from_slice(&(cw.len() as u64).to_le_bytes());
    key.extend_from_slice(&cw);
    key.extend_from_slice(&cv);
    Some(key.into_boxed_slice())
}

/// A 64-bit fingerprint of the canonical pair plus the round count, for
/// root entries of the transposition table ([`crate::ttable`]). Domain-
/// separated from the solver's per-game state keys by a fixed salt.
pub fn root_fingerprint(w: &[u8], v: &[u8], k: u32) -> Option<u64> {
    let key = canonical_key(w, v)?;
    let mut h = 0x517c_c1b7_2722_0a95u64; // salt: canonical-root domain
    for &b in key.iter() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(k) << 1 | 1;
    Some(h.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::equivalent;

    #[test]
    fn relabel_is_first_occurrence() {
        let (w, v) = relabel(b"ccaab", b"bca").unwrap();
        // c → a, a → b, b → c.
        assert_eq!(w, b"aabbc");
        assert_eq!(v, b"cab");
    }

    #[test]
    fn canonical_pair_collapses_renamings_and_swap() {
        let orbit = [
            ("aabb", "bbaa"),
            ("bbaa", "aabb"),
            ("ccdd", "ddcc"),
            ("bbaa", "aabb"),
        ];
        let reprs: Vec<_> = orbit
            .iter()
            .map(|(w, v)| canonical_pair(w.as_bytes(), v.as_bytes()).unwrap())
            .collect();
        for r in &reprs {
            assert_eq!(r, &reprs[0], "whole orbit must share one representative");
        }
        // …and a pair outside the orbit does not join it.
        let other = canonical_pair(b"abab", b"bbaa").unwrap();
        assert_ne!(other, reprs[0]);
    }

    #[test]
    fn canonical_pair_is_idempotent() {
        for (w, v) in [("aabb", "bbaa"), ("xyx", "yxy"), ("", "a"), ("", "")] {
            let (cw, cv) = canonical_pair(w.as_bytes(), v.as_bytes()).unwrap();
            let again = canonical_pair(&cw, &cv).unwrap();
            assert_eq!(again, (cw, cv));
        }
    }

    #[test]
    fn canonicalization_preserves_the_verdict_on_a_window() {
        // Exhaustive over Σ = {a, b}, |w|, |v| ≤ 3, k ≤ 2: the canonical
        // pair has the same verdict as the original. (The proptest suite
        // replays this with random permutations on longer words.)
        let words = ["", "a", "b", "ab", "ba", "aa", "bb", "aab", "aba", "bab"];
        for w in words {
            for v in words {
                let (cw, cv) = canonical_pair(w.as_bytes(), v.as_bytes()).unwrap();
                let cw = String::from_utf8(cw).unwrap();
                let cv = String::from_utf8(cv).unwrap();
                for k in 0..=2 {
                    assert_eq!(
                        equivalent(w, v, k),
                        equivalent(&cw, &cv, k),
                        "w={w} v={v} k={k} canon=({cw}, {cv})"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_alphabets_opt_out() {
        let w: Vec<u8> = (0..40u8).collect();
        assert!(relabel(&w, b"").is_none());
        assert!(canonical_key(&w, b"").is_none());
        assert!(root_fingerprint(&w, b"", 1).is_none());
    }

    #[test]
    fn root_fingerprint_separates_k() {
        let a = root_fingerprint(b"aabb", b"bbaa", 1).unwrap();
        let b = root_fingerprint(b"aabb", b"bbaa", 2).unwrap();
        assert_ne!(a, b);
    }
}
