use fc_games::pow2::unary_equivalent;
use std::io::Write;
fn main() {
    let mut out = std::io::stdout();
    'outer: for q in 40..=160usize {
        for d in [2usize, 4, 6, 8, 12, 16, 24, 36, 48] {
            if d >= q {
                continue;
            }
            let p = q - d;
            let t = std::time::Instant::now();
            if unary_equivalent(p, q, 3) {
                writeln!(out, "k=3 FOUND: ({p},{q}) in {:?}", t.elapsed()).ok();
                out.flush().ok();
                break 'outer;
            }
            if d == 2 {
                writeln!(out, "q={q} scanned ({:?}/check)", t.elapsed()).ok();
                out.flush().ok();
            }
        }
    }
    writeln!(out, "probe done").ok();
}
