//! Hot-path perf smoke: the E08 fooling confirmation must stay fast.
//!
//! `a¹²b¹² ≡₂ a¹⁴b¹²` took 47 s (release) on the pre-optimization solver;
//! the optimized solver decides it in well under a second. The budget here
//! is deliberately generous (it must also pass unoptimized debug builds of
//! the *optimized* code on slow CI), but any return to the old
//! byte-comparison search blows through it by an order of magnitude —
//! `scripts/check.sh` runs this test in release mode as a tripwire.

use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_words::Alphabet;
use std::time::{Duration, Instant};

#[test]
fn e08_rank2_confirmation_within_budget() {
    let budget = Duration::from_secs(30);
    let start = Instant::now();
    let mut solver = EfSolver::new(GamePair::new(
        format!("{}{}", "a".repeat(12), "b".repeat(12)),
        format!("{}{}", "a".repeat(14), "b".repeat(12)),
        &Alphabet::ab(),
    ));
    assert!(solver.equivalent(2), "E08 verdict regressed");
    let elapsed = start.elapsed();
    let stats = solver.stats();
    println!(
        "E08 a12b12 ≡₂ a14b12: {elapsed:.3?} wall, {} states, {} memo hits, {} pruned",
        stats.states_explored, stats.memo_hits, stats.pruned_moves
    );
    assert!(
        elapsed < budget,
        "solver perf regression: E08 took {elapsed:?} (budget {budget:?})"
    );
}
