//! Hot-path perf smokes: the E08 fooling confirmation and the batch
//! classify grid must stay fast.
//!
//! `a¹²b¹² ≡₂ a¹⁴b¹²` took 47 s (release) on the pre-optimization solver;
//! the optimized solver decides it in well under a second. The budgets here
//! are deliberately generous (they must also pass unoptimized debug builds
//! of the *optimized* code on slow CI), but any return to the old
//! byte-comparison search — or to per-pair structure rebuilding in the
//! batch engine — blows through them by an order of magnitude;
//! `scripts/check.sh` runs these tests in release mode as tripwires.

use fc_games::hintikka;
use fc_games::solver::EfSolver;
use fc_games::{GamePair, TransTable};
use fc_words::{Alphabet, Word};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn e08_rank2_confirmation_within_budget() {
    let budget = Duration::from_secs(30);
    let start = Instant::now();
    let mut solver = EfSolver::new(GamePair::new(
        format!("{}{}", "a".repeat(12), "b".repeat(12)),
        format!("{}{}", "a".repeat(14), "b".repeat(12)),
        &Alphabet::ab(),
    ));
    assert!(solver.equivalent(2), "E08 verdict regressed");
    let elapsed = start.elapsed();
    let stats = solver.stats();
    println!(
        "E08 a12b12 ≡₂ a14b12: {elapsed:.3?} wall, {} states, {} memo hits, {} pruned",
        stats.states_explored, stats.memo_hits, stats.pruned_moves
    );
    assert!(
        elapsed < budget,
        "solver perf regression: E08 took {elapsed:?} (budget {budget:?})"
    );
}

#[test]
fn batch_classify_window4_rank2_within_budget() {
    // The P9 tripwire: classify all 31 words of Σ^{≤4} at k = 2 on the
    // batch engine. The arena builds 31 structures (the naive loop built
    // ~2 per comparison), fingerprints refute most cross-class pairs, and
    // the verdict memo absorbs the rest — regressing any of those layers
    // shows up as an order-of-magnitude wall-time jump.
    let budget = Duration::from_secs(30);
    let words: Vec<Word> = Alphabet::ab().words_up_to(4).collect();
    let start = Instant::now();
    let (classes, stats) = hintikka::classes_with_stats(&words, 2);
    let elapsed = start.elapsed();
    println!(
        "P9 classify Σ^≤4 k=2: {elapsed:.3?} wall, {} classes, [batch: {stats}]",
        classes.len()
    );
    assert_eq!(
        stats.structures_built,
        words.len() as u64,
        "arena must build each word exactly once"
    );
    assert!(
        elapsed < budget,
        "batch classify perf regression: took {elapsed:?} (budget {budget:?})"
    );
}

#[test]
fn e08_e09_fooling_scan_within_budget_and_profile_pruned() {
    // PR-9 regression tripwire: the E08/E09 fooling scans at limit 20 had
    // crept from ~0.21 s / ~0.72 s (PR-2) to ~0.86 s / ~2.7 s because the
    // scan words' rank-2 type profiles were silently skipped — their
    // universes exceed the default `rank2_universe_cap`, so every
    // same-class candidate pair went to the full solver. `fooling::batch`
    // now raises the cap to 512; the stats assertions below pin the
    // *mechanism* (nearly everything profile- or arith-refuted, at most a
    // few games played), which trips deterministically even on noisy or
    // contended machines, and the generous wall budget catches only
    // order-of-magnitude collapses.
    use fc_games::fooling::FoolingInstance;
    let budget = Duration::from_secs(25);
    for (name, part_b, expected_states) in [("E08", "b", 3292u64), ("E09", "ba", 7015)] {
        let inst = FoolingInstance::new("", "a", "", part_b, "", |p| p).expect("co-primitive");
        let start = Instant::now();
        let (pair, stats) = inst.fooling_pair_with_stats(2, 20);
        let elapsed = start.elapsed();
        let pair = pair.expect("rank-2 fooling pair exists at limit 20");
        assert_eq!((pair.p, pair.q), (12, 14), "{name} scan verdict regressed");
        println!("{name} scan limit 20: {elapsed:.3?} wall, [batch: {stats}]");
        assert!(
            stats.pairs_solved <= 5,
            "{name}: {} pairs reached the solver — the rank-2 profile gate \
             is no longer firing on the scan words",
            stats.pairs_solved
        );
        assert!(
            stats.rank2_refutations >= 50,
            "{name}: only {} rank-2 profile refutations",
            stats.rank2_refutations
        );
        // The one game that is played must stay the optimized-solver size.
        assert!(
            stats.solver.states_explored <= 4 * expected_states,
            "{name}: solver explored {} states (expected ~{expected_states})",
            stats.solver.states_explored
        );
        assert!(
            elapsed < budget,
            "{name} scan perf regression: took {elapsed:?} (budget {budget:?})"
        );
    }
}

#[test]
fn pr10_guided_confirmation_state_budgets() {
    // PR-10 tripwire: the guided move ordering (compat lists + delta
    // consistency + k == 1 shortcut, docs/SOLVER.md §9.4) shrank the E08
    // confirmation from 3,292 explored states to 516 and E09 from 7,015
    // to 794. State counts are deterministic — unlike wall time they trip
    // identically on slow CI — so they are the primary assertion; the
    // wall budget only catches an order-of-magnitude collapse (and must
    // still clear unoptimized debug builds).
    let budget = Duration::from_secs(30);
    for (name, w, v, max_states) in [
        (
            "E08",
            format!("{}{}", "a".repeat(12), "b".repeat(12)),
            format!("{}{}", "a".repeat(14), "b".repeat(12)),
            1200u64,
        ),
        (
            "E09",
            format!("{}{}", "a".repeat(12), "ba".repeat(12)),
            format!("{}{}", "a".repeat(14), "ba".repeat(12)),
            2000,
        ),
    ] {
        let start = Instant::now();
        let mut solver = EfSolver::new(GamePair::new(w, v, &Alphabet::ab()));
        assert!(solver.equivalent(2), "{name} verdict regressed");
        let elapsed = start.elapsed();
        let stats = solver.stats();
        println!(
            "{name} guided confirmation: {elapsed:.3?} wall, {} states, {} memo hits, {} pruned",
            stats.states_explored, stats.memo_hits, stats.pruned_moves
        );
        assert!(
            stats.states_explored <= max_states,
            "{name}: guided ordering regressed — {} states explored (budget {max_states})",
            stats.states_explored
        );
        assert!(
            elapsed < budget,
            "{name} confirmation perf regression: took {elapsed:?} (budget {budget:?})"
        );
    }
}

#[test]
fn pr10_shared_table_hit_rate_floor_on_e09_reconfirmation() {
    // PR-10 tripwire: re-deciding a game against a shared transposition
    // table must be answered out of the table, not re-searched. A fresh
    // solver attached to the populated table has an empty L1 memo, so its
    // root probe goes straight to the shared entries: zero states, and
    // the table's overall hit rate clears a hard floor. A broken key
    // (fingerprint drift between solvers) or an eviction bug drops the
    // rate to ~0 long before it shows up in wall time.
    let table = Arc::new(TransTable::new(1 << 16));
    let w = format!("{}{}", "a".repeat(12), "ba".repeat(12));
    let v = format!("{}{}", "a".repeat(14), "ba".repeat(12));
    let game = GamePair::new(w, v, &Alphabet::ab());
    assert!(EfSolver::new(game.clone())
        .with_table(Arc::clone(&table))
        .equivalent(2));
    let mut second = EfSolver::new(game).with_table(Arc::clone(&table));
    let start = Instant::now();
    assert!(second.equivalent(2), "rescan verdict regressed");
    let elapsed = start.elapsed();
    let stats = second.stats();
    let t = table.stats();
    // The table's global counters include the first pass's populating
    // misses, so the floor is on the *second solver's* probe ledger: it
    // should be all hits (ideally one — the root).
    let rate = stats.table_hits as f64 / (stats.table_hits + stats.table_misses).max(1) as f64;
    println!(
        "E09 reconfirmation: {elapsed:.3?} wall, {} states, solver probes {} hits / {} misses \
         (rate {rate:.3}), table {t:?}",
        stats.states_explored, stats.table_hits, stats.table_misses
    );
    assert_eq!(
        stats.states_explored, 0,
        "rescan re-searched {} states instead of hitting the shared table",
        stats.states_explored
    );
    assert!(stats.table_hits >= 1, "{stats:?}");
    assert!(
        rate >= 0.9,
        "shared-table rescan hit rate {rate:.3} below floor 0.9: {stats:?}"
    );
}
