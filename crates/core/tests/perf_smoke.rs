//! Hot-path perf smokes: the E08 fooling confirmation and the batch
//! classify grid must stay fast.
//!
//! `a¹²b¹² ≡₂ a¹⁴b¹²` took 47 s (release) on the pre-optimization solver;
//! the optimized solver decides it in well under a second. The budgets here
//! are deliberately generous (they must also pass unoptimized debug builds
//! of the *optimized* code on slow CI), but any return to the old
//! byte-comparison search — or to per-pair structure rebuilding in the
//! batch engine — blows through them by an order of magnitude;
//! `scripts/check.sh` runs these tests in release mode as tripwires.

use fc_games::hintikka;
use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_words::{Alphabet, Word};
use std::time::{Duration, Instant};

#[test]
fn e08_rank2_confirmation_within_budget() {
    let budget = Duration::from_secs(30);
    let start = Instant::now();
    let mut solver = EfSolver::new(GamePair::new(
        format!("{}{}", "a".repeat(12), "b".repeat(12)),
        format!("{}{}", "a".repeat(14), "b".repeat(12)),
        &Alphabet::ab(),
    ));
    assert!(solver.equivalent(2), "E08 verdict regressed");
    let elapsed = start.elapsed();
    let stats = solver.stats();
    println!(
        "E08 a12b12 ≡₂ a14b12: {elapsed:.3?} wall, {} states, {} memo hits, {} pruned",
        stats.states_explored, stats.memo_hits, stats.pruned_moves
    );
    assert!(
        elapsed < budget,
        "solver perf regression: E08 took {elapsed:?} (budget {budget:?})"
    );
}

#[test]
fn batch_classify_window4_rank2_within_budget() {
    // The P9 tripwire: classify all 31 words of Σ^{≤4} at k = 2 on the
    // batch engine. The arena builds 31 structures (the naive loop built
    // ~2 per comparison), fingerprints refute most cross-class pairs, and
    // the verdict memo absorbs the rest — regressing any of those layers
    // shows up as an order-of-magnitude wall-time jump.
    let budget = Duration::from_secs(30);
    let words: Vec<Word> = Alphabet::ab().words_up_to(4).collect();
    let start = Instant::now();
    let (classes, stats) = hintikka::classes_with_stats(&words, 2);
    let elapsed = start.elapsed();
    println!(
        "P9 classify Σ^≤4 k=2: {elapsed:.3?} wall, {} classes, [batch: {stats}]",
        classes.len()
    );
    assert_eq!(
        stats.structures_built,
        words.len() as u64,
        "arena must build each word exactly once"
    );
    assert!(
        elapsed < budget,
        "batch classify perf regression: took {elapsed:?} (budget {budget:?})"
    );
}
