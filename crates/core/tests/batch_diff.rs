//! Differential suite for the batch ≡_k engine: every optimisation of
//! `crates/core/src/batch.rs` (shared arena, verdict memo, fingerprint
//! pruning, work-stealing parallel grid) must be byte-identical to the
//! definitional per-pair solver on the exhaustive Σ^{≤4} window.

use fc_games::batch::{BatchConfig, BatchSolver, StructureArena};
use fc_games::hintikka;
use fc_games::pow2;
use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_words::{Alphabet, Word};

fn window(max_len: usize) -> Vec<Word> {
    Alphabet::ab().words_up_to(max_len).collect()
}

#[test]
fn classify_equals_naive_on_exhaustive_window() {
    // The tentpole differential: batch classify (arena + memo +
    // fingerprints + union-find) vs the naive representative loop, on all
    // 31 words of Σ^{≤4}, for every rank ≤ 2.
    let words = window(4);
    for k in 0..=2u32 {
        assert_eq!(
            hintikka::classes(&words, k),
            hintikka::classes_naive(&words, k),
            "k={k}"
        );
    }
}

#[test]
fn parallel_classify_equals_sequential_on_exhaustive_window() {
    let words = window(4);
    for k in 0..=2u32 {
        let seq = hintikka::classes(&words, k);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                hintikka::classes_parallel(&words, k, threads),
                seq,
                "k={k} threads={threads}"
            );
        }
    }
}

#[test]
fn batch_verdicts_equal_fresh_solver_verdicts() {
    // Every single verdict the batch engine hands out — memoized,
    // fingerprint-refuted, or solver-decided — must equal a fresh
    // per-pair solver run over the same (window-union) alphabet.
    let words = window(3);
    let (arena, ids) = StructureArena::for_words(&words);
    let sigma = arena.alphabet().clone();
    let mut batch = BatchSolver::new(arena);
    for k in 0..=2u32 {
        let eq = batch.all_pairs(&ids, k);
        for (i, w) in words.iter().enumerate() {
            for (j, v) in words.iter().enumerate() {
                let direct =
                    EfSolver::new(GamePair::new(w.clone(), v.clone(), &sigma)).equivalent(k);
                assert_eq!(eq[i][j], direct, "w={w} v={v} k={k}");
            }
        }
    }
}

#[test]
fn fingerprint_path_is_invisible() {
    // With and without the fingerprint filter, the partition is identical
    // (the filter may only skip solver runs, never change verdicts).
    let words = window(4);
    for k in 0..=2u32 {
        let (arena, ids) = StructureArena::for_words(&words);
        let mut with_fp = BatchSolver::new(arena);
        let (arena2, ids2) = StructureArena::for_words(&words);
        let mut without_fp = BatchSolver::with_config(
            arena2,
            BatchConfig {
                use_fingerprints: false,
                use_rank2_profiles: false,
                use_arith: false,
                ..BatchConfig::default()
            },
        );
        assert_eq!(
            with_fp.classify(&ids, k),
            without_fp.classify(&ids2, k),
            "k={k}"
        );
    }
}

#[test]
fn rank2_profile_path_is_invisible() {
    // The lazily-computed rank-2 type profile is a pure filter: enabling
    // it on the exhaustive binary window must not change a single class
    // (every profile-refuted pair is also solver-inequivalent). In debug
    // builds the engine additionally replays the solver on each
    // profile-refuted pair via its internal debug_assert.
    let words = window(4);
    for k in 0..=2u32 {
        let (arena, ids) = StructureArena::for_words(&words);
        let mut with_rank2 = BatchSolver::with_config(
            arena,
            BatchConfig {
                use_rank2_profiles: true,
                ..BatchConfig::default()
            },
        );
        let (arena2, ids2) = StructureArena::for_words(&words);
        let mut default = BatchSolver::new(arena2);
        assert_eq!(
            with_rank2.classify(&ids, k),
            default.classify(&ids2, k),
            "k={k}"
        );
        if k == 2 {
            assert!(
                with_rank2.stats().rank2_refutations > 0,
                "the profile should decide at least one rank-2 pair on this window"
            );
        }
    }
}

#[test]
fn unary_scan_and_classes_equal_naive() {
    for k in 0..=2u32 {
        let limit = if k == 2 { 20 } else { 12 };
        assert_eq!(
            pow2::minimal_unary_pair(k, limit),
            pow2::minimal_unary_pair_naive(k, limit),
            "scan k={k}"
        );
        assert_eq!(
            pow2::unary_classes(k, 12),
            pow2::unary_classes_naive(k, 12),
            "classes k={k}"
        );
    }
}

#[test]
fn window_alphabet_padding_never_changes_verdicts() {
    // Satellite regression: the batch engine plays every pair over the
    // *window-union* alphabet, while the old per-pair loop used the joint
    // alphabet of just the two words. Padding Σ with letters absent from
    // both words must not change any verdict (the padded constants
    // interpret as consistent (⊥, ⊥) pairs that only pre-pin the forced
    // ⊥ ↦ ⊥ response).
    let words = window(3);
    let wide = Alphabet::abc(); // 'c' occurs in no window word
    for w in &words {
        for v in &words {
            for k in 0..=2u32 {
                let joint = EfSolver::new(GamePair::of(w.as_str(), v.as_str())).equivalent(k);
                let padded =
                    EfSolver::new(GamePair::new(w.clone(), v.clone(), &wide)).equivalent(k);
                assert_eq!(joint, padded, "w={w} v={v} k={k}");
            }
        }
    }
}

#[test]
fn rebound_solver_equals_fresh_solver() {
    // Per-worker solver reuse: a solver rebound across pairs must give the
    // same verdicts as a fresh solver per pair, in any probe order.
    let words = window(3);
    let (arena, ids) = StructureArena::for_words(&words);
    let mut reused: Option<EfSolver> = None;
    for &i in &ids {
        for &j in ids.iter().rev() {
            for k in 0..=2u32 {
                let game = arena.game(i, j);
                let fresh = EfSolver::new(game.clone()).equivalent(k);
                let solver = match reused.as_mut() {
                    Some(s) => {
                        s.rebind(game);
                        s
                    }
                    None => reused.insert(EfSolver::new(game)),
                };
                assert_eq!(
                    solver.equivalent(k),
                    fresh,
                    "w={} v={} k={k}",
                    arena.word(i),
                    arena.word(j)
                );
            }
        }
    }
}
