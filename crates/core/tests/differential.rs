//! Differential validation of the optimized solver.
//!
//! The exact solver in `fc_games::solver` is aggressively optimized
//! (concat tables, packed memo states, replay pruning, mirror-closed early
//! accepts, a parallel top level). Every one of those optimizations must
//! be *semantically invisible*: this suite compares the optimized verdicts
//! against the deliberately naive definitional solver
//! ([`fc_games::reference`]) on the exhaustive window of all word pairs
//! over Σ = {a, b} with |w| ≤ 4, for every rank k ≤ 2, and additionally
//! checks that the parallel and sequential searches agree and that
//! Spoiler winning lines remain valid under pruning.

use fc_games::partial_iso::Pair;
use fc_games::reference::naive_game_equivalent;
use fc_games::solver::EfSolver;
use fc_games::{GamePair, Side};
use fc_logic::FactorId;
use fc_words::Alphabet;

/// All words over {a, b} of length ≤ `max_len` (including ε).
fn window(max_len: usize) -> Vec<String> {
    let mut words = vec![String::new()];
    let mut frontier = vec![String::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for c in ['a', 'b'] {
                let mut x = w.clone();
                x.push(c);
                next.push(x);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

/// The fixed Σ = {a, b} game — letters missing from a word exercise the
/// ⊥-valued constant pairs.
fn game(w: &str, v: &str) -> GamePair {
    GamePair::new(w, v, &Alphabet::ab())
}

#[test]
fn optimized_matches_naive_reference_on_window() {
    let words = window(4);
    let mut checked = 0usize;
    for (i, w) in words.iter().enumerate() {
        // Verdicts are symmetric in (w, v) — the j < i half of the square
        // re-runs the same games with the roles swapped, which the
        // parallel/line tests below cover; the reference solver is slow
        // enough that skipping the mirrored duplicates matters.
        for v in words.iter().skip(i) {
            let g = game(w, v);
            for k in 0..=2u32 {
                let fast = EfSolver::new(g.clone()).equivalent(k);
                let slow = naive_game_equivalent(&g, k);
                assert_eq!(fast, slow, "w={w:?} v={v:?} k={k}");
                checked += 1;
            }
        }
    }
    // 31 words over {a,b}^{≤4}: 31·32/2 unordered pairs × 3 ranks.
    assert_eq!(checked, 31 * 32 / 2 * 3);
}

#[test]
fn parallel_matches_sequential_on_window() {
    let words = window(4);
    for w in &words {
        for v in &words {
            let g = game(w, v);
            for k in 0..=2u32 {
                let seq = EfSolver::new(g.clone()).equivalent(k);
                let par = EfSolver::new(g.clone()).equivalent_par(k, 3);
                assert_eq!(seq, par, "w={w:?} v={v:?} k={k}");
            }
        }
    }
}

/// Any consistent Duplicator response extending `state`, or `None`.
fn salvage(g: &GamePair, state: &[Pair], side: Side, element: FactorId) -> Option<FactorId> {
    let mut candidates: Vec<FactorId> = g.structure(side.other()).universe().collect();
    candidates.push(FactorId::BOTTOM);
    candidates
        .into_iter()
        .find(|&r| g.consistent(state, g.as_ab_pair(side, element, r)))
}

#[test]
fn spoiler_winning_lines_remain_valid_under_pruning() {
    let words = window(4);
    let mut lines_checked = 0usize;
    for (i, w) in words.iter().enumerate() {
        for v in words.iter().skip(i + 1) {
            let g = game(w, v);
            for k in 1..=2u32 {
                let mut solver = EfSolver::new(g.clone());
                if solver.equivalent(k) {
                    continue;
                }
                let line = solver
                    .spoiler_winning_line(k)
                    .expect("inequivalent pair must yield a line");
                assert!(line.len() as u32 <= k, "w={w:?} v={v:?} k={k}");
                if !g.constants_consistent() {
                    // Rank-0 loss: the empty line is the certificate.
                    assert!(line.is_empty());
                    continue;
                }
                // Walk the line: each move must be winning for Spoiler
                // (no Duplicator response survives optimal play).
                let mut state = g.constant_pairs.clone();
                let mut remaining = k;
                for (step, mv) in line.iter().enumerate() {
                    assert!(remaining > 0, "line longer than budget");
                    assert!(
                        solver
                            .best_response_from(&state, mv.side, mv.element, remaining)
                            .is_none(),
                        "w={w:?} v={v:?} k={k} step={step}: move not winning"
                    );
                    match salvage(&g, &state, mv.side, mv.element) {
                        Some(r) => {
                            let p = g.as_ab_pair(mv.side, mv.element, r);
                            if !state.contains(&p) {
                                state.push(p);
                            }
                            remaining -= 1;
                        }
                        None => {
                            // No consistent response at all — Spoiler has
                            // won outright, so this must be the last move.
                            assert_eq!(step + 1, line.len());
                        }
                    }
                }
                lines_checked += 1;
            }
        }
    }
    assert!(lines_checked > 100, "window should produce many lines");
}
