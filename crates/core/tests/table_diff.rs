//! Differential validation of the shared transposition table and the
//! alphabet canonicalization layer (docs/SOLVER.md §9).
//!
//! The table is shared across *solvers*: a verdict computed for one game
//! may be served to a different game whose fingerprinted subgame
//! coincides. Both layers must be semantically invisible, so this suite
//! pins, on the exhaustive window of all word pairs over Σ = {a, b} with
//! |w| ≤ 4 and every rank k ≤ 2:
//!
//! - shared-table sequential verdicts == the naive reference solver,
//!   with ONE table threaded through two passes over the window (the
//!   second pass is answered out of entries the first one wrote);
//! - shared-table parallel verdicts == shared-table sequential verdicts;
//! - and, property-tested, that relabelling both words by a random
//!   alphabet permutation π never changes the verdict — the soundness
//!   contract behind `canon::canonical_pair` collapsing symmetric pairs.

use fc_games::reference::naive_game_equivalent;
use fc_games::solver::EfSolver;
use fc_games::{canon, GamePair, TransTable};
use fc_words::{Alphabet, Word};
use proptest::prelude::*;
use std::sync::Arc;

/// All words over {a, b} of length ≤ `max_len` (including ε).
fn window(max_len: usize) -> Vec<String> {
    Alphabet::ab()
        .words_up_to(max_len)
        .map(|w| String::from_utf8(w.bytes().to_vec()).unwrap())
        .collect()
}

fn game(w: &str, v: &str) -> GamePair {
    GamePair::new(w, v, &Alphabet::ab())
}

#[test]
fn shared_table_sequential_matches_reference_on_window() {
    let table = Arc::new(TransTable::new(1 << 16));
    let words = window(4);
    let mut checked = 0usize;
    // Two passes over the window with ONE table: pass 0 populates it,
    // pass 1 re-solves every game through a fresh solver whose empty L1
    // memo forces it onto the shared entries. Both passes must agree
    // with the reference — i.e. a table-served verdict is never allowed
    // to differ from a freshly searched one.
    for pass in 0..2 {
        for (i, w) in words.iter().enumerate() {
            for v in words.iter().skip(i) {
                let g = game(w, v);
                for k in 0..=2u32 {
                    let fast = EfSolver::new(g.clone())
                        .with_table(Arc::clone(&table))
                        .equivalent(k);
                    let slow = naive_game_equivalent(&g, k);
                    assert_eq!(fast, slow, "pass={pass} w={w:?} v={v:?} k={k}");
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, 2 * (31 * 32 / 2 * 3));
    // Entries are keyed by the game fingerprint, so only the repeat pass
    // can hit — and it must, or this suite is vacuous.
    let t = table.stats();
    assert!(t.hits > 0, "expected cross-solver table hits: {t:?}");
    assert!(t.inserts > 0, "{t:?}");
}

#[test]
fn shared_table_parallel_matches_sequential_on_window() {
    let seq_table = Arc::new(TransTable::new(1 << 16));
    let par_table = Arc::new(TransTable::new(1 << 16));
    let words = window(4);
    for w in &words {
        for v in &words {
            let g = game(w, v);
            for k in 0..=2u32 {
                let seq = EfSolver::new(g.clone())
                    .with_table(Arc::clone(&seq_table))
                    .equivalent(k);
                let par = EfSolver::new(g.clone())
                    .with_table(Arc::clone(&par_table))
                    .equivalent_par(k, 3);
                assert_eq!(seq, par, "w={w:?} v={v:?} k={k}");
            }
        }
    }
}

/// π over {a, b, c} as a byte map.
fn apply(pi: &[u8; 3], w: &str) -> String {
    w.bytes().map(|b| pi[(b - b'a') as usize] as char).collect()
}

fn abc_word(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c']), 0..=max_len)
        .prop_map(|cs| cs.into_iter().collect())
}

fn permutation() -> impl Strategy<Value = [u8; 3]> {
    prop::sample::select(vec![
        [b'a', b'b', b'c'],
        [b'a', b'c', b'b'],
        [b'b', b'a', b'c'],
        [b'b', b'c', b'a'],
        [b'c', b'a', b'b'],
        [b'c', b'b', b'a'],
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Verdicts are invariant under alphabet permutations: the FC
    /// signature treats symbols uniformly (constants aside, and π
    /// permutes the constants along with the words), so Duplicator
    /// strategies transport across π. This is exactly the fact that
    /// makes answering π(w), π(v) from a canonical root entry sound.
    #[test]
    fn verdicts_are_invariant_under_alphabet_permutation(
        w in abc_word(4),
        v in abc_word(4),
        pi in permutation(),
        k in 0u32..3,
    ) {
        let abc = Alphabet::abc();
        let orig = EfSolver::new(GamePair::new(w.as_str(), v.as_str(), &abc)).equivalent(k);
        let (pw, pv) = (apply(&pi, &w), apply(&pi, &v));
        let renamed =
            EfSolver::new(GamePair::new(pw.as_str(), pv.as_str(), &abc)).equivalent(k);
        prop_assert_eq!(orig, renamed, "w={} v={} π={:?} k={}", w, v, pi, k);
    }

    /// The canonical pair itself has the original's verdict (it is one
    /// particular relabelling of one particular orientation).
    #[test]
    fn canonical_pair_preserves_verdicts(w in abc_word(4), v in abc_word(4), k in 0u32..3) {
        let Some((cw, cv)) = canon::canonical_pair(w.as_bytes(), v.as_bytes()) else {
            return Ok(());
        };
        let abc = Alphabet::abc();
        let orig = EfSolver::new(GamePair::new(w.as_str(), v.as_str(), &abc)).equivalent(k);
        let canon_verdict = EfSolver::new(GamePair::new(
            Word::from_bytes(cw.clone()),
            Word::from_bytes(cv.clone()),
            &abc,
        ))
        .equivalent(k);
        prop_assert_eq!(orig, canon_verdict, "w={} v={} canon=({:?},{:?})", w, v, cw, cv);
    }
}
