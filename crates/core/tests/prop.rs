//! Property tests for the EF game engine: solver laws (symmetry,
//! reflexivity, monotonicity in rank), partial-isomorphism consistency,
//! and strategy behaviour on randomized instances.

use fc_games::batch::{BatchSolver, StructureArena};
use fc_games::fingerprint::{rank2_type_profile, Fingerprint};
use fc_games::partial_iso::{check_partial_iso, consistent_extension};
use fc_games::solver::EfSolver;
use fc_games::strategies::IdentityStrategy;
use fc_games::strategy::validate_strategy;
use fc_games::GamePair;
use fc_logic::FactorStructure;
use fc_words::{Alphabet, Word};
use proptest::prelude::*;

fn word(max_len: usize) -> impl Strategy<Value = Word> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b']), 0..=max_len)
        .prop_map(Word::from_bytes)
}

fn game(w: &Word, v: &Word) -> GamePair {
    GamePair::new(w.clone(), v.clone(), &Alphabet::ab())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equivalence_is_reflexive(w in word(6), k in 0u32..3) {
        let mut s = EfSolver::new(game(&w, &w));
        prop_assert!(s.equivalent(k), "w={} k={}", w, k);
    }

    #[test]
    fn equivalence_is_symmetric(w in word(5), v in word(5), k in 0u32..3) {
        let mut s1 = EfSolver::new(game(&w, &v));
        let mut s2 = EfSolver::new(game(&v, &w));
        prop_assert_eq!(s1.equivalent(k), s2.equivalent(k), "w={} v={} k={}", w, v, k);
    }

    #[test]
    fn equivalence_is_antitone_in_rank(w in word(5), v in word(5)) {
        let mut s = EfSolver::new(game(&w, &v));
        let mut prev = true;
        for k in 0..=3u32 {
            let now = s.equivalent(k);
            prop_assert!(prev || !now, "≡_{} regained after losing ≡_{}", k, k - 1);
            prev = now;
        }
    }

    #[test]
    fn spoiler_line_exists_iff_inequivalent(w in word(5), v in word(5)) {
        let mut s = EfSolver::new(game(&w, &v));
        let k = 2;
        let equiv = s.equivalent(k);
        let line = s.spoiler_winning_line(k);
        prop_assert_eq!(equiv, line.is_none(), "w={} v={}", w, v);
        if let Some(line) = line {
            prop_assert!(line.len() as u32 <= k);
        }
    }

    #[test]
    fn distinguishing_rounds_is_the_threshold(w in word(5), v in word(5)) {
        let mut s = EfSolver::new(game(&w, &v));
        match s.distinguishing_rounds(3) {
            Some(k) => {
                prop_assert!(!s.equivalent(k));
                if k > 0 {
                    prop_assert!(s.equivalent(k - 1));
                }
            }
            None => prop_assert!(s.equivalent(3)),
        }
    }

    #[test]
    fn identity_strategy_characterizes_equality(w in word(4), v in word(4)) {
        let g = game(&w, &v);
        let wins = validate_strategy(&g, &IdentityStrategy, 1).is_none();
        if w == v {
            prop_assert!(wins);
        }
        // Identity can only win at depth 1 when the words share all
        // factor-structure-visible features; equality is sufficient.
        if wins && w.len() != v.len() {
            // The full word of the longer side has no mirror — identity
            // must have answered ⊥ and lost, so wins implies equal length.
            prop_assert!(false, "identity won on {} vs {}", w, v);
        }
    }

    #[test]
    fn incremental_consistency_matches_full_check(w in word(4), v in word(4)) {
        let g = game(&w, &v);
        prop_assume!(g.constants_consistent());
        let base = {
            let mut b = g.constant_pairs.clone();
            b.sort_unstable();
            b.dedup();
            b
        };
        for x in g.a.universe() {
            for y in g.b.universe() {
                let inc = consistent_extension(&g.a, &g.b, &base, (x, y));
                let mut full = base.clone();
                full.push((x, y));
                let explicit = check_partial_iso(&g.a, &g.b, &full).is_ok();
                prop_assert_eq!(inc, explicit, "w={} v={} x={:?} y={:?}", w, v, x, y);
            }
        }
    }

    #[test]
    fn fingerprint_refutation_never_disagrees_with_the_solver(w in word(6), v in word(6), k in 0u32..3) {
        // The batch engine's fingerprint filter claims: refutation at rank
        // k implies solver-inequivalence at rank k. Any counterexample is
        // an unsound invariant, not a perf bug.
        let sigma = Alphabet::ab();
        let fw = Fingerprint::of(&FactorStructure::new(w.clone(), &sigma));
        let fv = Fingerprint::of(&FactorStructure::new(v.clone(), &sigma));
        if fw.refutes(&fv, k) {
            let mut s = EfSolver::new(game(&w, &v));
            prop_assert!(!s.equivalent(k), "fingerprint wrongly refuted {} ≡_{} {}", w, k, v);
        }
    }

    #[test]
    fn rank2_profile_separation_never_disagrees_with_the_solver(w in word(6), v in word(6), k in 2u32..4) {
        // The lazily-computed rank-2 type profile claims: unequal profiles
        // imply ≢_k for every k ≥ 2. Any counterexample is an unsound
        // invariant, not a perf bug.
        let sigma = Alphabet::ab();
        let pw = rank2_type_profile(&FactorStructure::new(w.clone(), &sigma));
        let pv = rank2_type_profile(&FactorStructure::new(v.clone(), &sigma));
        if pw != pv {
            let mut s = EfSolver::new(game(&w, &v));
            prop_assert!(!s.equivalent(k), "rank-2 profile wrongly separated {} ≡_{} {}", w, k, v);
        }
    }

    #[test]
    fn batch_verdict_equals_fresh_solver(w in word(5), v in word(5), k in 0u32..3) {
        let (arena, ids) = StructureArena::for_words(&[w.clone(), v.clone()]);
        let mut batch = BatchSolver::new(arena);
        let direct = EfSolver::new(game(&w, &v)).equivalent(k);
        prop_assert_eq!(batch.equivalent(ids[0], ids[1], k), direct, "w={} v={} k={}", w, v, k);
    }

    #[test]
    fn rank_zero_equivalence_is_symbol_set_equality(w in word(6), v in word(6)) {
        let mut s = EfSolver::new(game(&w, &v));
        // Over the shared alphabet signature, ≡_0 holds iff the two words
        // realise the same ground atoms over constants — which for τ_Σ is
        // exactly "same occurring-symbol sets" plus matching short-word
        // concatenation facts among constants (|w| ≤ 2 corner cases).
        let same_symbols = w.symbols() == v.symbols();
        if s.equivalent(0) {
            prop_assert!(same_symbols, "≡₀ but different symbol sets: {} vs {}", w, v);
        }
    }
}
