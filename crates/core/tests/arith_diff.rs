//! Differential suite for the semilinear arithmetic fast path: every
//! verdict the [`fc_games::arith`] oracle hands out must be byte-identical
//! to the exact game solver on the `u^p ≡_k u^q` grid.
//!
//! Grid sizes are build-dependent: release runs the full `|u| ≤ 3`,
//! `p, q ≤ 20`, `k ≤ 2` acceptance grid (`scripts/check.sh` has a release
//! leg for this file); debug builds shrink the exponent range so the suite
//! stays inside the tier-1 budget — and in debug the batch engine's
//! internal `debug_assert` replays every arith verdict against a fresh
//! per-pair solver anyway, so the reduced grid loses breadth, not depth.

use fc_games::arith::{ArithOracle, ArithRoute};
use fc_games::batch::{periodic_table_builder, BatchConfig, BatchSolver, StructureArena};
use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_words::Word;

/// Exponent ceiling of the grid (the acceptance grid is `p, q ≤ 20`).
const MAX_EXP: usize = if cfg!(debug_assertions) { 10 } else { 20 };

/// The oracle under test, with the solver-backed periodic builder the
/// batch tier uses. The window always covers the full grid.
fn arith(w: &Word, v: &Word, k: u32) -> Option<bool> {
    ArithOracle::global()
        .verdict_words(w.bytes(), v.bytes(), k, false, |root| {
            periodic_table_builder(k, root, 28)
        })
        .map(|verdict| verdict.equivalent)
}

#[test]
fn unary_grid_matches_fresh_solver() {
    // |u| = 1: every pair of the grid against a fresh per-pair EfSolver.
    // This is the ≥100×-speedup route, so it gets the direct comparison.
    let words: Vec<Word> = (0..=MAX_EXP).map(|p| Word::from("a").pow(p)).collect();
    for k in 0..=2u32 {
        for (p, w) in words.iter().enumerate() {
            for (q, v) in words.iter().enumerate() {
                let direct = EfSolver::new(GamePair::of(w.as_str(), v.as_str())).equivalent(k);
                assert_eq!(
                    arith(w, v, k),
                    Some(direct),
                    "a^{p} vs a^{q} at k={k}: oracle must be eligible and agree"
                );
            }
        }
    }
}

#[test]
fn periodic_grid_matches_exact_batch_engine() {
    // |u| ∈ {2, 3}: the oracle's solver-backed exponent tables against the
    // exact batch engine with the arith tier disabled (itself pinned
    // byte-identical to per-pair EfSolver runs by `tests/batch_diff.rs`).
    let roots = ["ab", "ba", "aab", "aba", "abb", "baa", "bab", "bba"];
    for root in roots {
        let words: Vec<Word> = (0..=MAX_EXP).map(|p| Word::from(root).pow(p)).collect();
        for k in 0..=2u32 {
            let (arena, ids) = StructureArena::for_words(&words);
            let mut exact = BatchSolver::with_config(
                arena,
                BatchConfig {
                    use_rank2_profiles: true,
                    use_arith: false,
                    ..BatchConfig::default()
                },
            );
            let eq = exact.all_pairs(&ids, k);
            for (p, w) in words.iter().enumerate() {
                for (q, v) in words.iter().enumerate() {
                    match arith(w, v, k) {
                        Some(fast) => assert_eq!(
                            fast, eq[p][q],
                            "{root}^{p} vs {root}^{q} at k={k}: oracle disagrees with solver"
                        ),
                        // The only grid points outside the oracle's case
                        // split: ε against a non-unary power.
                        None => assert!(
                            p == 0 || q == 0,
                            "{root}^{p} vs {root}^{q} at k={k}: oracle unexpectedly ineligible"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn oracle_routes_are_as_documented() {
    let oracle = ArithOracle::global();
    let route = |w: &str, v: &str, k: u32| {
        oracle
            .verdict_words(w.as_bytes(), v.as_bytes(), k, false, |root| {
                periodic_table_builder(k, root, 28)
            })
            .map(|verdict| verdict.route)
    };
    assert_eq!(route("abab", "abab", 2), Some(ArithRoute::Equal));
    assert_eq!(route("aaa", "aaaa", 1), Some(ArithRoute::Unary));
    assert_eq!(route("", "aa", 2), Some(ArithRoute::Unary)); // ε = a⁰
    assert_eq!(route("abab", "ababab", 0), Some(ArithRoute::RootRankZero));
    assert_eq!(route("abab", "ababab", 1), Some(ArithRoute::Periodic));
    assert_eq!(route("ab", "ba", 1), None); // different primitive roots
    assert_eq!(route("", "ab", 1), None); // ε vs a non-unary power
    assert_eq!(route("aa", "aaa", 9), None); // beyond the exact tables
}

#[test]
fn unary_tables_pin_known_minimal_pairs() {
    // The semilinear certificates must reproduce the solver-established
    // minimal unary pairs: (1, 2) at k = 0, (3, 4) at k = 1, (12, 14) at
    // k = 2 (EXPERIMENTS.md E03).
    let oracle = ArithOracle::global();
    let expected = [(0u32, (1u64, 2u64)), (1, (3, 4)), (2, (12, 14))];
    for (k, pair) in expected {
        let table = oracle.unary_table(k).expect("k <= 2 tables always build");
        assert_eq!(table.minimal_pair(), Some(pair), "k={k}");
        let (p, q) = pair;
        assert!(table.verdict(p, q), "k={k}: the minimal pair is equivalent");
        for b in 0..p {
            assert!(
                !table.verdict(b, q),
                "k={k}: a^{b} ≡ a^{q} contradicts minimality"
            );
        }
    }
}
