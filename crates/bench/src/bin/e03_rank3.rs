//! E03 rank-3 runner: audit the abstraction-key unary engine against the
//! definitional brute DP, then fit a semilinear table for `a^n` at k = 3.
//!
//! The rank-3 sweep is the one computation in the repo no exhaustive scan
//! reaches (EXPERIMENTS.md Finding 5): each `a^p ≡₃ a^q` game is far out of
//! solver range, so the class table must come from the arithmetic engine —
//! and the engine must therefore be *audited*, not trusted. This binary
//! makes that audit reproducible:
//!
//! 1. sweep `n = 0..=window` with `unary_type_hashes_with_stats(window, 3)`
//!    (the abstraction-key engine behind `ArithOracle::unary_table(3)`);
//! 2. compare the prefix `0..=audit_top` hash-for-hash against
//!    [`brute_unary_type`], the small definitional DP with *no* abstraction
//!    (slow: ~minutes per n near 300 — cached across runs);
//! 3. report the distinct-class growth curve, the first repeated class
//!    (= the k = 3 minimal pair, independent of any tail fit), and the
//!    candidate (threshold, period) frontier table;
//! 4. attempt the strict [`UnaryClassTable`] fit (requires the tail to be
//!    stable for ≥ 4 whole periods inside the window).
//!
//! Usage: `e03_rank3 [audit_top] [window]` (defaults 60, 160 — small enough
//! for a fresh machine; the EXPERIMENTS.md E03 record used 300 / 2400).
//! Set `FC_E03_CACHE` to move the brute-DP cache file (default
//! `target/e03_brute_k3.txt`); delete it to force a from-scratch audit.

use fc_games::arith::{brute_unary_type, unary_type_hashes_with_stats};
use fc_games::semilinear::UnaryClassTable;
use std::io::Write as _;
use std::time::Instant;

fn cache_path() -> String {
    std::env::var("FC_E03_CACHE").unwrap_or_else(|_| "target/e03_brute_k3.txt".into())
}

/// The brute DP hashes for `n = 0..=top`, extending the on-disk cache as
/// needed (each new `n` costs exponentially more; the cache is append-only
/// and safe to ship between machines — it is ground truth, not engine output).
fn load_or_build_brute(top: u64) -> Vec<u128> {
    let path = cache_path();
    let mut cached: Vec<u128> = std::fs::read_to_string(&path)
        .unwrap_or_default()
        .lines()
        .filter_map(|l| u128::from_str_radix(l, 16).ok())
        .collect();
    if cached.len() < top as usize + 1 {
        let t0 = Instant::now();
        for n in cached.len() as u64..=top {
            cached.push(brute_unary_type(n, 3));
        }
        let mut f = std::fs::File::create(&path).expect("writable brute cache path");
        for h in &cached {
            writeln!(f, "{h:032x}").unwrap();
        }
        println!(
            "brute DP extended to n = {top}: {:.1} s (cache: {path})",
            t0.elapsed().as_secs_f64()
        );
    }
    cached
}

fn main() {
    let audit_top = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(60);
    let window = std::env::args()
        .nth(2)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(160)
        .max(audit_top);

    let t0 = Instant::now();
    let (fast, stats) = unary_type_hashes_with_stats(window, 3);
    println!(
        "fast k=3 sweep 0..={window}: {:.2} s, subtrees={} memo_hits={}",
        t0.elapsed().as_secs_f64(),
        stats.subtrees,
        stats.memo_hits
    );

    let brute = load_or_build_brute(audit_top);
    let bad: Vec<u64> = (0..=audit_top)
        .filter(|&n| brute[n as usize] != fast[n as usize])
        .collect();
    if bad.is_empty() {
        println!("audit vs brute DP 0..={audit_top}: CLEAN");
    } else {
        println!(
            "audit vs brute DP 0..={audit_top}: {} MISMATCHES, first at n={} ({:?})",
            bad.len(),
            bad[0],
            &bad[..bad.len().min(20)]
        );
    }

    // Distinct-class growth and the first repeated class. A repeat
    // h(p) = h(q) is a genuine `a^p ≡₃ a^q` claim (subject only to the
    // audit above) — it does not depend on any eventual-periodicity fit.
    let mut seen: Vec<u128> = Vec::new();
    let mut last_new = 0u64;
    let mut first_pair = None;
    for (n, &h) in fast.iter().enumerate() {
        if seen.contains(&h) {
            if first_pair.is_none() {
                let p = seen.iter().position(|&s| s == h).unwrap();
                first_pair = Some((p as u64, n as u64));
            }
        } else {
            seen.push(h);
            last_new = n as u64;
        }
    }
    println!(
        "growth: {} distinct classes, last new class at n={last_new}, first repeat = {first_pair:?}",
        seen.len()
    );

    // Candidate (threshold, period) frontier: for each P, the last n with
    // h(n) != h(n+P). Candidates the window can't confirm with ≥ 2 whole
    // periods of slack are suppressed; the strict fit below wants ≥ 4.
    let mut candidates: Vec<(u64, u64)> = Vec::new();
    for period in 1..=(window / 2) {
        let frontier = (0..=(window - period))
            .rev()
            .find(|&n| fast[n as usize] != fast[(n + period) as usize]);
        let threshold = frontier.map_or(0, |n| n + 1);
        if window >= threshold + 2 * period {
            candidates.push((threshold, period));
        }
    }
    candidates.sort();
    for (t, p) in candidates.iter().take(8) {
        let margin = (window - *t) as f64 / *p as f64;
        println!("candidate: T={t} P={p} (margin {margin:.1} periods in window)");
    }
    if candidates.is_empty() {
        println!("no candidate period visible in window 0..={window} — enlarge it");
    }

    match UnaryClassTable::from_hashes(3, fast, stats) {
        Ok(t) => println!(
            "fit: threshold={} period={} classes={} minimal_pair={:?}",
            t.threshold,
            t.period,
            t.classes.len(),
            t.minimal_pair()
        ),
        Err(e) => println!("fit FAILED: {e}"),
    }
}
