//! Machine-readable perf snapshot: times the headline workloads (E03 scan,
//! E24 class table, E08/E09 confirmations) on both the naive per-pair path
//! and the batch engine, and prints one JSON object to stdout.
//!
//! `scripts/bench_snapshot.sh` redirects this into `BENCH_PR<N>.json`, so
//! future PRs have a perf trajectory to compare against without re-running
//! criterion. No external JSON crate: the object is flat and assembled by
//! hand.

use fc_games::fooling::FoolingInstance;
use fc_games::{hintikka, pow2};
use fc_words::{Alphabet, Word};
use std::time::{Duration, Instant};

/// Median-of-three timing (the workloads are deterministic; three runs
/// absorb scheduler noise without criterion's overhead).
fn time<F: FnMut()>(mut f: F) -> Duration {
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    runs.sort();
    runs[1]
}

fn field(out: &mut Vec<String>, key: &str, d: Duration) {
    out.push(format!("  \"{key}_ms\": {:.3}", d.as_secs_f64() * 1e3));
}

fn main() {
    let mut fields: Vec<String> = Vec::new();

    // E03: minimal-pair scan at the rank-2 Full limit, naive vs batch,
    // plus the extended batch-only bound.
    let e03_naive = time(|| {
        assert_eq!(pow2::minimal_unary_pair_naive(2, 20), Some((12, 14)));
    });
    let e03_batch = time(|| {
        assert_eq!(pow2::minimal_unary_pair(2, 20), Some((12, 14)));
    });
    let e03_batch_40 = time(|| {
        assert_eq!(pow2::minimal_unary_pair(2, 40), Some((12, 14)));
    });
    field(&mut fields, "e03_scan_naive_k2_limit20", e03_naive);
    field(&mut fields, "e03_scan_batch_k2_limit20", e03_batch);
    field(&mut fields, "e03_scan_batch_k2_limit40", e03_batch_40);

    // E03's class-table half: unary ≡₂ classes, naive vs batch.
    let classes_naive = time(|| {
        let _ = pow2::unary_classes_naive(2, 14);
    });
    let classes_batch = time(|| {
        let _ = pow2::unary_classes(2, 14);
    });
    field(
        &mut fields,
        "e03_unary_classes_naive_k2_limit14",
        classes_naive,
    );
    field(
        &mut fields,
        "e03_unary_classes_batch_k2_limit14",
        classes_batch,
    );

    // E24: the binary window class table, naive vs batch vs parallel.
    let words: Vec<Word> = Alphabet::ab().words_up_to(4).collect();
    let e24_naive = time(|| {
        let _ = hintikka::classes_naive(&words, 2);
    });
    let e24_batch = time(|| {
        let _ = hintikka::classes(&words, 2);
    });
    let e24_par = time(|| {
        let _ = hintikka::classes_parallel(&words, 2, 4);
    });
    field(&mut fields, "e24_table_naive_window4_k2", e24_naive);
    field(&mut fields, "e24_table_batch_window4_k2", e24_batch);
    field(&mut fields, "e24_table_batch_par4_window4_k2", e24_par);

    // E08/E09: the heavy rank-2 fooling confirmations.
    let anbn = FoolingInstance::new("", "a", "", "b", "", |p| p).expect("co-primitive");
    let e08 = time(|| {
        assert!(anbn.fooling_pair(2, 20).is_some());
    });
    field(&mut fields, "e08_anbn_confirmation_k2_limit20", e08);
    let a_ba = FoolingInstance::new("", "a", "", "ba", "", |p| p).expect("co-primitive");
    let e09 = time(|| {
        assert!(a_ba.fooling_pair(2, 20).is_some());
    });
    field(&mut fields, "e09_a_ba_confirmation_k2_limit20", e09);

    // PR 6: the FC-definability oracle (arXiv 2505.09772) over a corpus
    // spanning all verdicts, and the FC2xx lint pass that surfaces it.
    let oracle_corpus = [
        "a*b*",
        "(ab)*",
        "(aa)*b(a|b)*",
        "(a|b)*ab(a|b)*",
        "b*a(ab)*",
        "(b|ab*a)*",
        "((a|b)(a|b))*",
        "(aa|bb)*",
        "(ab|ba)*",
    ];
    let budget = fc_reglang::definable::DefinabilityBudget::default();
    let oracle = time(|| {
        for pattern in oracle_corpus {
            let re = fc_reglang::Regex::parse(pattern).expect("corpus regex");
            let _ = fc_reglang::definable::fc_definable_regex(&re, b"ab", &budget);
        }
    });
    field(&mut fields, "e26_definability_oracle_corpus9", oracle);
    let lint_src = "E x, y: (x in /b(ab)*/) & (y in /(b|ab*a)*/)";
    let fc2_lint = time(|| {
        let diags = fc_logic::analysis::Analyzer::default().analyze_source(lint_src);
        assert!(diags.iter().any(|d| d.code == "FC201"));
        assert!(diags.iter().any(|d| d.code == "FC202"));
    });
    field(&mut fields, "fc2xx_lint_pass_two_constraints", fc2_lint);

    // Headline speedups for the acceptance criteria.
    let ratio =
        |naive: Duration, batch: Duration| naive.as_secs_f64() / batch.as_secs_f64().max(1e-9);
    fields.push(format!(
        "  \"e03_scan_speedup\": {:.2}",
        ratio(e03_naive, e03_batch)
    ));
    fields.push(format!(
        "  \"e24_table_speedup\": {:.2}",
        ratio(e24_naive, e24_batch)
    ));

    println!("{{\n{}\n}}", fields.join(",\n"));
}
