//! Machine-readable perf snapshot: times the headline workloads (E03 scan,
//! E24 class table, E08/E09 confirmations) on both the naive per-pair path
//! and the batch engine, and prints one JSON object to stdout.
//!
//! `scripts/bench_snapshot.sh` redirects this into `BENCH_PR<N>.json`, so
//! future PRs have a perf trajectory to compare against without re-running
//! criterion. No external JSON crate: the object is flat and assembled by
//! hand.

use fc_games::fooling::FoolingInstance;
use fc_games::{hintikka, pow2};
use fc_words::{Alphabet, Word};
use std::time::{Duration, Instant};

/// Median-of-three timing (the workloads are deterministic; three runs
/// absorb scheduler noise without criterion's overhead).
fn time<F: FnMut()>(mut f: F) -> Duration {
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    runs.sort();
    runs[1]
}

fn field(out: &mut Vec<String>, key: &str, d: Duration) {
    out.push(format!("  \"{key}_ms\": {:.3}", d.as_secs_f64() * 1e3));
}

fn main() {
    let mut fields: Vec<String> = Vec::new();

    // E03: minimal-pair scan at the rank-2 Full limit, naive vs batch,
    // plus the extended batch-only bound.
    let e03_naive = time(|| {
        assert_eq!(pow2::minimal_unary_pair_naive(2, 20), Some((12, 14)));
    });
    let e03_batch = time(|| {
        assert_eq!(pow2::minimal_unary_pair(2, 20), Some((12, 14)));
    });
    let e03_batch_40 = time(|| {
        assert_eq!(pow2::minimal_unary_pair(2, 40), Some((12, 14)));
    });
    field(&mut fields, "e03_scan_naive_k2_limit20", e03_naive);
    field(&mut fields, "e03_scan_batch_k2_limit20", e03_batch);
    field(&mut fields, "e03_scan_batch_k2_limit40", e03_batch_40);

    // E03's class-table half: unary ≡₂ classes, naive vs batch.
    let classes_naive = time(|| {
        let _ = pow2::unary_classes_naive(2, 14);
    });
    let classes_batch = time(|| {
        let _ = pow2::unary_classes(2, 14);
    });
    field(
        &mut fields,
        "e03_unary_classes_naive_k2_limit14",
        classes_naive,
    );
    field(
        &mut fields,
        "e03_unary_classes_batch_k2_limit14",
        classes_batch,
    );

    // E24: the binary window class table, naive vs batch vs parallel.
    let words: Vec<Word> = Alphabet::ab().words_up_to(4).collect();
    let e24_naive = time(|| {
        let _ = hintikka::classes_naive(&words, 2);
    });
    let e24_batch = time(|| {
        let _ = hintikka::classes(&words, 2);
    });
    let e24_par = time(|| {
        let _ = hintikka::classes_parallel(&words, 2, 4);
    });
    field(&mut fields, "e24_table_naive_window4_k2", e24_naive);
    field(&mut fields, "e24_table_batch_window4_k2", e24_batch);
    field(&mut fields, "e24_table_batch_par4_window4_k2", e24_par);

    // E08/E09: the heavy rank-2 fooling confirmations.
    let anbn = FoolingInstance::new("", "a", "", "b", "", |p| p).expect("co-primitive");
    let e08 = time(|| {
        assert!(anbn.fooling_pair(2, 20).is_some());
    });
    field(&mut fields, "e08_anbn_confirmation_k2_limit20", e08);
    let a_ba = FoolingInstance::new("", "a", "", "ba", "", |p| p).expect("co-primitive");
    let e09 = time(|| {
        assert!(a_ba.fooling_pair(2, 20).is_some());
    });
    field(&mut fields, "e09_a_ba_confirmation_k2_limit20", e09);

    // PR 6: the FC-definability oracle (arXiv 2505.09772) over a corpus
    // spanning all verdicts, and the FC2xx lint pass that surfaces it.
    let oracle_corpus = [
        "a*b*",
        "(ab)*",
        "(aa)*b(a|b)*",
        "(a|b)*ab(a|b)*",
        "b*a(ab)*",
        "(b|ab*a)*",
        "((a|b)(a|b))*",
        "(aa|bb)*",
        "(ab|ba)*",
    ];
    let budget = fc_reglang::definable::DefinabilityBudget::default();
    let oracle = time(|| {
        for pattern in oracle_corpus {
            let re = fc_reglang::Regex::parse(pattern).expect("corpus regex");
            let _ = fc_reglang::definable::fc_definable_regex(&re, b"ab", &budget);
        }
    });
    field(&mut fields, "e26_definability_oracle_corpus9", oracle);
    let lint_src = "E x, y: (x in /b(ab)*/) & (y in /(b|ab*a)*/)";
    let fc2_lint = time(|| {
        let diags = fc_logic::analysis::Analyzer::default().analyze_source(lint_src);
        assert!(diags.iter().any(|d| d.code == "FC201"));
        assert!(diags.iter().any(|d| d.code == "FC202"));
    });
    field(&mut fields, "fc2xx_lint_pass_two_constraints", fc2_lint);

    // PR 7: factor-structure backends. The succinct (suffix-automaton)
    // backend must build |w| = 10⁴ in milliseconds and answer probes from
    // O(m) storage; the dense Θ(m²) concat table is timed at a feasible
    // size and its memory extrapolated to the same word for the headline
    // ratio (building it directly at 10⁴ would allocate ~1.6 GB).
    use fc_logic::{BackendKind, FactorStructure};
    let sigma = Alphabet::abc();
    let w_small = Word::from("ab").pow(1_000); // |w| = 2·10³
    let w_large = Word::from("ab").pow(5_000); // |w| = 10⁴
    let dense_small = FactorStructure::with_backend(w_small.clone(), &sigma, BackendKind::Dense);
    let succ_small = FactorStructure::with_backend(w_small.clone(), &sigma, BackendKind::Succinct);
    let succ_large = FactorStructure::with_backend(w_large.clone(), &sigma, BackendKind::Succinct);
    let dense_build_small = time(|| {
        let s = FactorStructure::with_backend(w_small.clone(), &sigma, BackendKind::Dense);
        assert_eq!(s.universe_len(), dense_small.universe_len());
    });
    let succ_build_small = time(|| {
        let s = FactorStructure::with_backend(w_small.clone(), &sigma, BackendKind::Succinct);
        assert_eq!(s.universe_len(), succ_small.universe_len());
    });
    let succ_build_large = time(|| {
        let s = FactorStructure::with_backend(w_large.clone(), &sigma, BackendKind::Succinct);
        assert_eq!(s.universe_len(), succ_large.universe_len());
    });
    field(&mut fields, "pr7_dense_build_w2e3", dense_build_small);
    field(&mut fields, "pr7_succinct_build_w2e3", succ_build_small);
    field(&mut fields, "pr7_succinct_build_w1e4", succ_build_large);
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut sample = |bound: usize| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as usize % bound
    };
    let n = w_large.len();
    let windows: Vec<(usize, usize)> = (0..1_000)
        .map(|_| {
            let i = sample(n + 1);
            (i, i + sample(n + 1 - i))
        })
        .collect();
    let succ_probes = time(|| {
        for &(i, j) in &windows {
            assert!(succ_large.id_of(&w_large.bytes()[i..j]).is_some());
        }
    });
    field(&mut fields, "pr7_succinct_probes_1e3_w1e4", succ_probes);
    let bytes_per_factor = succ_large.memory_bytes() as f64 / succ_large.universe_len() as f64;
    fields.push(format!(
        "  \"pr7_succinct_bytes_per_factor_w1e4\": {bytes_per_factor:.1}"
    ));
    // Dense memory at 10⁴ extrapolated from the measured 2·10³ footprint
    // by the Θ(m²) concat-table law (linear terms are negligible there).
    let m_small = dense_small.universe_len() as f64;
    let m_large = succ_large.universe_len() as f64;
    let dense_extrapolated = dense_small.memory_bytes() as f64 * (m_large / m_small).powi(2);
    fields.push(format!(
        "  \"pr7_dense_extrapolated_memory_ratio_w1e4\": {:.1}",
        dense_extrapolated / succ_large.memory_bytes() as f64
    ));

    // Headline speedups for the acceptance criteria.
    let ratio =
        |naive: Duration, batch: Duration| naive.as_secs_f64() / batch.as_secs_f64().max(1e-9);
    fields.push(format!(
        "  \"e03_scan_speedup\": {:.2}",
        ratio(e03_naive, e03_batch)
    ));
    fields.push(format!(
        "  \"e24_table_speedup\": {:.2}",
        ratio(e24_naive, e24_batch)
    ));

    // PR 8: `fc serve` throughput and latency. An in-process server on an
    // ephemeral port, driven by the deterministic fc-loadgen mixed
    // workload (10⁵ queries, 8 lockstep clients) — one run, not
    // median-of-three: the percentile aggregation inside one replay
    // already averages 10⁵ samples.
    {
        use fc_serve::loadgen::{self, LoadgenConfig};
        use fc_serve::server::{Server, ServerConfig};
        let server = Server::bind(ServerConfig::default()).expect("bind serve bench server");
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run().expect("serve run"));
        let mut config = LoadgenConfig::new(addr.to_string());
        config.requests = 100_000;
        config.clients = 8;
        config.docs = 16;
        config.shutdown = true;
        let summary = loadgen::run(&config).expect("loadgen replay");
        server_thread.join().expect("serve thread");
        assert_eq!(summary.errors, 0, "serve bench workload had rejects");
        assert!(summary.plan_cache_hits > 0, "plan cache never hit");
        fields.push(format!(
            "  \"serve_loadgen_requests\": {}",
            summary.requests
        ));
        fields.push(format!(
            "  \"serve_throughput_qps\": {:.0}",
            summary.throughput_qps
        ));
        fields.push(format!(
            "  \"serve_p50_us\": {:.1}",
            summary.p50.as_nanos() as f64 / 1e3
        ));
        fields.push(format!(
            "  \"serve_p99_us\": {:.1}",
            summary.p99.as_nanos() as f64 / 1e3
        ));
        fields.push(format!(
            "  \"serve_plan_cache_hits\": {}",
            summary.plan_cache_hits
        ));
        fields.push(format!(
            "  \"serve_plan_cache_hit_rate\": {:.4}",
            summary.plan_cache_hit_rate()
        ));
        // PR 9: the game endpoint's client-side quantiles — the leg the
        // arith fast path moves (≈67% of game requests in the mix are
        // same-root pairs the oracle answers without a solver).
        for op in &summary.per_op {
            if op.op == "game" {
                fields.push(format!(
                    "  \"serve_game_p50_us\": {:.1}",
                    op.p50.as_nanos() as f64 / 1e3
                ));
                fields.push(format!(
                    "  \"serve_game_p99_us\": {:.1}",
                    op.p99.as_nanos() as f64 / 1e3
                ));
            }
        }
    }

    // PR 9: the semilinear arithmetic tier. Warm-table unary verdicts vs
    // a fresh exact solver on the k = 2 minimal pair (the ≥100×
    // acceptance ratio), and the unary classify ablation.
    {
        use fc_games::arith::ArithOracle;
        use fc_games::batch::{BatchConfig, BatchSolver, StructureArena};
        let oracle = ArithOracle::global();
        let build_k2 = time(|| {
            // A from-scratch build (the oracle's cached copy was already
            // warmed by the serve leg above — amortisation is the point,
            // but this leg records what one cold build costs).
            use fc_games::arith::{default_window, unary_class_table};
            assert!(unary_class_table(2, default_window(2)).is_ok());
        });
        field(&mut fields, "pr9_unary_table_build_k2", build_k2);
        let verdicts = time(|| {
            for _ in 0..10_000 {
                assert_eq!(oracle.unary_verdict(12, 14, 2), Some(true));
            }
        });
        let per_verdict_us = verdicts.as_secs_f64() * 1e6 / 10_000.0;
        fields.push(format!(
            "  \"pr9_arith_verdict_a12_a14_k2_us\": {per_verdict_us:.4}"
        ));
        let solver_verdict = time(|| {
            use fc_games::solver::EfSolver;
            assert!(EfSolver::of(&"a".repeat(12), &"a".repeat(14)).equivalent(2));
        });
        field(&mut fields, "pr9_solver_verdict_a12_a14_k2", solver_verdict);
        fields.push(format!(
            "  \"pr9_unary_verdict_speedup\": {:.0}",
            solver_verdict.as_secs_f64() * 1e6 / per_verdict_us.max(1e-9)
        ));
        let unary: Vec<Word> = (0..=20).map(|p| Word::from("a").pow(p)).collect();
        let classify = |use_arith: bool| {
            let (arena, ids) = StructureArena::for_words(&unary);
            let mut batch = BatchSolver::with_config(
                arena,
                BatchConfig {
                    use_arith,
                    ..BatchConfig::default()
                },
            );
            batch.classify(&ids, 2).len()
        };
        let with_arith = time(|| {
            classify(true);
        });
        let exact = time(|| {
            classify(false);
        });
        field(
            &mut fields,
            "pr9_unary_classify_arith_k2_limit20",
            with_arith,
        );
        field(&mut fields, "pr9_unary_classify_exact_k2_limit20", exact);

        // The k = 3 headline: minutes of fast-engine sweep, so opt-in via
        // FC_SNAPSHOT_RANK3=1 (scripts/bench_snapshot.sh sets it).
        if std::env::var_os("FC_SNAPSHOT_RANK3").is_some() {
            let t0 = Instant::now();
            let table = oracle.unary_table(3).expect("rank-3 tail must fit");
            let build = t0.elapsed();
            let (p, q) = table.minimal_pair().expect("rank-3 minimal pair");
            field(&mut fields, "pr9_unary_table_build_k3", build);
            fields.push(format!("  \"pr9_k3_minimal_pair_p\": {p}"));
            fields.push(format!("  \"pr9_k3_minimal_pair_q\": {q}"));
            fields.push(format!("  \"pr9_k3_tail_threshold\": {}", table.threshold));
            fields.push(format!("  \"pr9_k3_tail_period\": {}", table.period));
        }
    }

    // PR 10: the shared transposition table, canonicalization and guided
    // ordering (docs/SOLVER.md §9). Four legs: the bare E08/E09
    // confirmation walls (the acceptance metric — the scan legs above
    // carry the arith/fingerprint tiers, these time the guided solver
    // alone), the shared-table hit rate on a window re-solve, and the
    // memory-boundedness of a small table under 10⁴-game churn.
    {
        use fc_games::solver::EfSolver;
        use fc_games::{canon, GamePair, TransTable};
        use std::sync::Arc;
        let ab = Alphabet::ab();
        let e08_pair = (
            format!("{}{}", "a".repeat(12), "b".repeat(12)),
            format!("{}{}", "a".repeat(14), "b".repeat(12)),
        );
        let e09_pair = (
            format!("{}{}", "a".repeat(12), "ba".repeat(12)),
            format!("{}{}", "a".repeat(14), "ba".repeat(12)),
        );
        let e08_confirm = time(|| {
            let g = GamePair::new(e08_pair.0.as_str(), e08_pair.1.as_str(), &ab);
            assert!(EfSolver::new(g).equivalent(2));
        });
        let e09_confirm = time(|| {
            let g = GamePair::new(e09_pair.0.as_str(), e09_pair.1.as_str(), &ab);
            assert!(EfSolver::new(g).equivalent(2));
        });
        field(&mut fields, "pr10_e08_confirmation_k2", e08_confirm);
        field(&mut fields, "pr10_e09_confirmation_k2", e09_confirm);

        // Shared-table hit rate: solve the Σ^{≤4} k ≤ 2 window twice
        // through one table; the second pass is answered from entries the
        // first one wrote, so the second-pass solvers' probe ledger is
        // nearly all hits.
        let table = Arc::new(TransTable::new(1 << 16));
        let words: Vec<Word> = Alphabet::ab().words_up_to(4).collect();
        let pass = |count_probes: bool| -> (u64, u64) {
            let (mut hits, mut misses) = (0u64, 0u64);
            for w in &words {
                for v in &words {
                    for k in 0..=2u32 {
                        let g = GamePair::new(w.clone(), v.clone(), &ab);
                        let mut s = EfSolver::new(g).with_table(Arc::clone(&table));
                        s.equivalent(k);
                        if count_probes {
                            hits += s.stats().table_hits;
                            misses += s.stats().table_misses;
                        }
                    }
                }
            }
            (hits, misses)
        };
        pass(false);
        let (hits, misses) = pass(true);
        fields.push(format!(
            "  \"pr10_table_rescan_hit_rate_window4\": {:.4}",
            hits as f64 / (hits + misses).max(1) as f64
        ));

        // Boundedness: a deliberately tiny table (2¹⁰ slots) absorbing
        // 10⁴ distinct canonical root entries must evict, not grow.
        let small = Arc::new(TransTable::new(1 << 10));
        let bytes_before = small.bytes();
        for i in 0..10_000u64 {
            let w: Vec<u8> = (0..14)
                .map(|b| if i >> b & 1 == 1 { b'a' } else { b'b' })
                .collect();
            let fp = canon::root_fingerprint(&w, b"ab", 1).expect("two-letter word");
            small.insert_root(fp, 1, i % 2 == 0);
        }
        let t = small.stats();
        assert_eq!(small.bytes(), bytes_before, "table grew under churn");
        fields.push(format!(
            "  \"pr10_table_bytes_1024_slots\": {}",
            small.bytes()
        ));
        fields.push(format!("  \"pr10_table_churn_inserts_1e4\": {}", t.inserts));
        fields.push(format!(
            "  \"pr10_table_churn_evictions_1e4\": {}",
            t.evictions
        ));
    }

    println!("{{\n{}\n}}", fields.join(",\n"));
}
