//! # fc-bench — benchmark harness
//!
//! Criterion benches, one group per performance table of EXPERIMENTS.md:
//!
//! - `bench_solver` (P1): exact ≡_k decision vs word length and rank —
//!   the exponential baseline every strategy is measured against;
//! - `bench_pow2` (P2): Lemma 3.6 witness search and class tables;
//! - `bench_modelcheck` (P3): FC model checking, guarded vs naive
//!   (the φ_fib ablation);
//! - `bench_strategy` (P4): composed-strategy responses vs solver
//!   decisions — the "composition beats brute force" crossover;
//! - `bench_words` (P5): suffix-automaton factor indexing vs naive
//!   enumeration, primitivity, exponents;
//! - `bench_fooling` (P6): fooling-pair search;
//! - `bench_reglang` (P7): regex → NFA → DFA → minimize → boundedness;
//! - `bench_spanners` (P8): regex-formula evaluation and the algebra.
//!
//! Shared workload generators live here in the library so benches and the
//! report binary agree on inputs.

use fc_words::Word;

/// Deterministic "pseudo-random" word over {a, b}: linear congruential,
/// reproducible across runs (no external RNG needed for workloads).
pub fn lcg_word(len: usize, seed: u64) -> Word {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        bytes.push(if (state >> 33) & 1 == 0 { b'a' } else { b'b' });
    }
    Word::from_bytes(bytes)
}

/// The unary powers workload: `a^n`.
pub fn unary(n: usize) -> Word {
    Word::from("a").pow(n)
}

/// The periodic workload: `(ab)^n`.
pub fn periodic(n: usize) -> Word {
    Word::from("ab").pow(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        assert_eq!(lcg_word(16, 7), lcg_word(16, 7));
        assert_ne!(lcg_word(16, 7), lcg_word(16, 8));
        assert_eq!(lcg_word(16, 7).len(), 16);
    }

    #[test]
    fn workload_shapes() {
        assert_eq!(unary(3).as_str(), "aaa");
        assert_eq!(periodic(2).as_str(), "abab");
    }
}
