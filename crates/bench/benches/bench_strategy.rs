//! P4 — the crossover: composed-strategy responses vs exact-solver
//! decisions on the same games (Lemma 4.4 / 4.9 as algorithms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_games::solver::EfSolver;
use fc_games::strategies::{PrimitivePowerStrategy, UnaryEndAlignedStrategy};
use fc_games::strategy::DuplicatorStrategy;
use fc_games::{GamePair, Side};
use fc_words::Word;

/// Duplicator answering one Spoiler move via the Primitive Power strategy.
fn strategy_response(c: &mut Criterion) {
    let mut g = c.benchmark_group("P4-response-primitive-power");
    for (p, q) in [(12usize, 14usize), (24, 26), (48, 50)] {
        let lookup_game = GamePair::of(&"a".repeat(q), &"a".repeat(p));
        let lookup = UnaryEndAlignedStrategy::new(q, p, p.saturating_sub(5));
        let strat = PrimitivePowerStrategy::new(Word::from("ab"), lookup_game, Box::new(lookup));
        let composed = strat.composed_game();
        let pick = composed
            .a
            .id_of(Word::from("ab").pow(q - 1).bytes())
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(q), &(), |b, _| {
            b.iter(|| {
                let mut s = strat.boxed_clone();
                s.respond(&composed, Side::A, pick)
            })
        });
    }
    g.finish();
}

/// The exact solver deciding the same composed equivalences — the
/// brute-force baseline the composition replaces.
fn solver_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("P4-solver-baseline");
    g.sample_size(10);
    for (p, q) in [(12usize, 14usize), (24, 26)] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &(p, q), |b, &(p, q)| {
            b.iter(|| {
                let mut s = EfSolver::new(GamePair::new(
                    Word::from("ab").pow(q),
                    Word::from("ab").pow(p),
                    &fc_words::Alphabet::ab(),
                ));
                s.equivalent(1)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, strategy_response, solver_baseline);
criterion_main!(benches);
