//! P9 — the bulk ≡_k engine: batch classify vs the naive per-pair loop,
//! fingerprint ablation, and the parallel pair grid. The ≥5× acceptance
//! bound of the batch-engine PR is measured here and snapshotted into
//! BENCH_PR5.json by `scripts/bench_snapshot.sh`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_games::batch::{BatchConfig, BatchSolver, StructureArena};
use fc_games::{hintikka, pow2};
use fc_words::{Alphabet, Word};

fn window(max_len: usize) -> Vec<Word> {
    Alphabet::ab().words_up_to(max_len).collect()
}

/// The headline ablation: naive per-pair loop vs arena (no fingerprints)
/// vs arena + fingerprints vs the parallel grid, all on Σ^{≤4} at k = 2.
fn batch_classify(c: &mut Criterion) {
    let words = window(4);
    let mut g = c.benchmark_group("P9-batch-classify");
    g.sample_size(10);
    g.bench_function("naive-window4-k2", |b| {
        b.iter(|| hintikka::classes_naive(&words, 2))
    });
    g.bench_function("arena-window4-k2", |b| {
        b.iter(|| {
            let (arena, ids) = StructureArena::for_words(&words);
            let mut batch = BatchSolver::with_config(
                arena,
                BatchConfig {
                    use_fingerprints: false,
                    use_rank2_profiles: false,
                    use_arith: false,
                    ..BatchConfig::default()
                },
            );
            batch.classify(&ids, 2)
        })
    });
    g.bench_function("arena-fp-window4-k2", |b| {
        b.iter(|| hintikka::classes(&words, 2))
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("parallel-window4-k2", threads),
            &threads,
            |b, &threads| b.iter(|| hintikka::classes_parallel(&words, 2, threads)),
        );
    }
    g.finish();
}

/// The E03 minimal-pair scan: batch vs naive at the rank-2 Full limit.
fn batch_minimal_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("P9-minimal-pair");
    g.sample_size(10);
    g.bench_function("naive-k2-limit20", |b| {
        b.iter(|| pow2::minimal_unary_pair_naive(2, 20))
    });
    g.bench_function("batch-k2-limit20", |b| {
        b.iter(|| pow2::minimal_unary_pair(2, 20))
    });
    g.bench_function("batch-k2-limit40", |b| {
        b.iter(|| pow2::minimal_unary_pair(2, 40))
    });
    g.finish();
}

/// Unary class tables, batch vs naive (the other half of E03).
fn batch_unary_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("P9-unary-classes");
    g.sample_size(10);
    g.bench_function("naive-k2-limit14", |b| {
        b.iter(|| pow2::unary_classes_naive(2, 14))
    });
    g.bench_function("batch-k2-limit14", |b| {
        b.iter(|| pow2::unary_classes(2, 14))
    });
    g.bench_function("batch-par4-k2-limit14", |b| {
        b.iter(|| pow2::unary_classes_parallel(2, 14, 4))
    });
    g.finish();
}

criterion_group!(
    benches,
    batch_classify,
    batch_minimal_pair,
    batch_unary_classes
);
criterion_main!(benches);
