//! P6 — fooling-pair search (the inexpressibility witness generator).

use criterion::{criterion_group, criterion_main, Criterion};
use fc_games::fooling::FoolingInstance;
use fc_relations::languages;

fn anbn_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("P6-fooling-search");
    g.sample_size(10);
    g.bench_function("anbn-k1", |b| {
        let inst = FoolingInstance::new("", "a", "", "b", "", |p| p).unwrap();
        b.iter(|| inst.fooling_pair(1, 10))
    });
    g.bench_function("a-ba-k1", |b| {
        let inst = FoolingInstance::new("", "a", "", "ba", "", |p| p).unwrap();
        b.iter(|| inst.fooling_pair(1, 10))
    });
    g.finish();
}

fn catalogue_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("P6-catalogue");
    g.sample_size(10);
    for lang in languages::catalogue() {
        g.bench_function(lang.name, move |b| b.iter(|| lang.fooling_pair(1, 12)));
    }
    g.finish();
}

criterion_group!(benches, anbn_search, catalogue_search);
criterion_main!(benches);
