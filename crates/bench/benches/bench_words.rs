//! P5 — word-combinatorics substrate: factor indexing, primitivity,
//! exponents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_bench::lcg_word;
use fc_words::exponent::exp;
use fc_words::factors::{factor_set, FactorIndex};
use fc_words::primitivity::is_primitive;

fn factor_indexing(c: &mut Criterion) {
    let mut g = c.benchmark_group("P5-factor-index");
    for len in [32usize, 128, 512] {
        let w = lcg_word(len, 42);
        g.bench_with_input(BenchmarkId::new("suffix-automaton", len), &w, |b, w| {
            b.iter(|| FactorIndex::build(w.bytes()))
        });
        if len <= 128 {
            g.bench_with_input(BenchmarkId::new("naive-set", len), &w, |b, w| {
                b.iter(|| factor_set(w.bytes()))
            });
        }
    }
    g.finish();
}

fn membership_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("P5-factor-membership");
    let w = lcg_word(512, 42);
    let idx = FactorIndex::build(w.bytes());
    let probe = lcg_word(32, 43);
    g.bench_function("indexed", |b| b.iter(|| idx.contains(probe.bytes())));
    g.bench_function("kmp", |b| {
        b.iter(|| fc_words::is_factor(probe.bytes(), w.bytes()))
    });
    g.finish();
}

fn primitivity_and_exponent(c: &mut Criterion) {
    let mut g = c.benchmark_group("P5-primitivity-exp");
    for len in [64usize, 256, 1024] {
        let w = lcg_word(len, 5);
        g.bench_with_input(BenchmarkId::new("is_primitive", len), &w, |b, w| {
            b.iter(|| is_primitive(w.bytes()))
        });
    }
    let big = fc_words::Word::from("aab").pow(200);
    g.bench_function("exp-aab-600", |b| b.iter(|| exp(b"aab", big.bytes())));
    g.finish();
}

criterion_group!(
    benches,
    factor_indexing,
    membership_queries,
    primitivity_and_exponent
);
criterion_main!(benches);
