//! P7 — the regular-language pipeline: parse → NFA → DFA → minimize →
//! boundedness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_reglang::bounded::{bounded_witness, is_bounded};
use fc_reglang::{Dfa, Nfa, Regex};

const PATTERNS: [&str; 5] = ["(a|b)*abb", "(ab)*", "a*b*a*b*", "(a|bb)+", "(aab)*b*(ba)*"];

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("P7-pipeline");
    for pat in PATTERNS {
        g.bench_with_input(BenchmarkId::new("regex-to-min-dfa", pat), &pat, |b, pat| {
            b.iter(|| {
                let re = Regex::parse(pat).unwrap();
                Dfa::from_regex(&re, b"ab")
            })
        });
    }
    g.finish();
}

fn nfa_vs_dfa_membership(c: &mut Criterion) {
    let mut g = c.benchmark_group("P7-membership");
    let re = Regex::parse("(a|b)*abb").unwrap();
    let nfa = Nfa::from_regex(&re);
    let dfa = Dfa::from_regex(&re, b"ab");
    let w = fc_bench::lcg_word(256, 9);
    g.bench_function("nfa-256", |b| b.iter(|| nfa.accepts(w.bytes())));
    g.bench_function("dfa-256", |b| b.iter(|| dfa.accepts(w.bytes())));
    g.finish();
}

fn boundedness(c: &mut Criterion) {
    let mut g = c.benchmark_group("P7-boundedness");
    for pat in PATTERNS {
        let dfa = Dfa::from_regex(&Regex::parse(pat).unwrap(), b"ab");
        g.bench_with_input(BenchmarkId::new("decide", pat), &dfa, |b, dfa| {
            b.iter(|| is_bounded(dfa))
        });
    }
    let dfa = Dfa::from_regex(&Regex::parse("(aab)*b*(ba)*").unwrap(), b"ab");
    g.bench_function("witness", |b| b.iter(|| bounded_witness(&dfa)));
    g.finish();
}

criterion_group!(benches, pipeline, nfa_vs_dfa_membership, boundedness);
criterion_main!(benches);
