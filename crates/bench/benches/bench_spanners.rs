//! P8 — spanner evaluation: regex formulas, joins, selections, and the
//! Theorem 5.5 reduction spanners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_bench::lcg_word;
use fc_relations::reductions;
use fc_spanners::regex_formula::RegexFormula;
use fc_spanners::spanner::Spanner;
use std::rc::Rc;

fn extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("P8-extractor");
    let spanner = Spanner::regex(RegexFormula::extractor(RegexFormula::capture(
        "x",
        RegexFormula::pattern("ab"),
    )));
    for len in [16usize, 32, 64] {
        let doc = lcg_word(len, 3);
        g.bench_with_input(BenchmarkId::from_parameter(len), &doc, |b, doc| {
            b.iter(|| spanner.evaluate(doc.bytes()))
        });
    }
    g.finish();
}

fn algebra_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("P8-algebra");
    g.sample_size(20);
    let split = Spanner::regex(RegexFormula::cat([
        RegexFormula::capture("x", RegexFormula::any_star()),
        RegexFormula::capture("y", RegexFormula::any_star()),
    ]));
    let eq = Spanner::eq_select("x", "y", split.clone());
    let diff = Rc::new(Spanner::Difference(split.clone(), eq.clone()));
    for len in [8usize, 16, 24] {
        let doc = lcg_word(len, 4);
        g.bench_with_input(BenchmarkId::new("eq-select", len), &doc, |b, doc| {
            b.iter(|| eq.evaluate(doc.bytes()))
        });
        g.bench_with_input(BenchmarkId::new("difference", len), &doc, |b, doc| {
            b.iter(|| diff.evaluate(doc.bytes()))
        });
    }
    g.finish();
}

fn reduction_spanners(c: &mut Criterion) {
    let mut g = c.benchmark_group("P8-reductions");
    g.sample_size(10);
    for case in reductions::all_reductions() {
        let member: Vec<u8> = match case.language {
            "L5" => b"abaabbbbaaba".to_vec(),
            _ => b"aabb".to_vec(),
        };
        g.bench_function(case.relation, move |b| {
            b.iter(|| case.spanner.accepts(&member))
        });
    }
    g.finish();
}

fn backend_ablation(c: &mut Criterion) {
    use fc_spanners::vset_automaton::VSetAutomaton;
    let mut g = c.benchmark_group("P8-backend-ablation");
    g.sample_size(20);
    let formula =
        RegexFormula::extractor(RegexFormula::capture("x", RegexFormula::pattern("(ab)+")));
    let automaton = VSetAutomaton::compile(&formula);
    for len in [12usize, 24] {
        let doc = lcg_word(len, 11);
        g.bench_with_input(BenchmarkId::new("ast-matcher", len), &doc, |b, doc| {
            b.iter(|| formula.evaluate(doc.bytes()))
        });
        g.bench_with_input(BenchmarkId::new("vset-automaton", len), &doc, |b, doc| {
            b.iter(|| automaton.evaluate(doc.bytes()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    extraction,
    algebra_ops,
    reduction_spanners,
    backend_ablation
);
criterion_main!(benches);
