//! P2 — Lemma 3.6 machinery: minimal unary pair search and class tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_games::pow2::{minimal_unary_pair, unary_classes};

fn pair_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("P2-minimal-pair");
    g.sample_size(10);
    g.bench_function("k1-limit8", |b| b.iter(|| minimal_unary_pair(1, 8)));
    g.bench_function("k2-limit14", |b| b.iter(|| minimal_unary_pair(2, 14)));
    g.finish();
}

fn class_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("P2-classes");
    g.sample_size(10);
    for limit in [8usize, 12, 16] {
        g.bench_with_input(BenchmarkId::new("k1", limit), &limit, |b, &limit| {
            b.iter(|| unary_classes(1, limit))
        });
    }
    g.bench_function("k2-limit14", |b| b.iter(|| unary_classes(2, 14)));
    g.finish();
}

criterion_group!(benches, pair_search, class_tables);
criterion_main!(benches);
