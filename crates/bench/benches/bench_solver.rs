//! P1 — exact EF solver scaling: ≡_k decision vs word length and rank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_bench::{lcg_word, periodic, unary};
use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_words::Alphabet;

fn solver_unary(c: &mut Criterion) {
    let mut g = c.benchmark_group("P1-solver-unary");
    for n in [6usize, 10, 14, 18] {
        for k in [1u32, 2] {
            g.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &(n, k),
                |b, &(n, k)| {
                    b.iter(|| {
                        let mut s = EfSolver::new(GamePair::new(
                            unary(n),
                            unary(n + 2),
                            &Alphabet::unary(),
                        ));
                        s.equivalent(k)
                    })
                },
            );
        }
    }
    g.finish();
}

fn solver_periodic(c: &mut Criterion) {
    let mut g = c.benchmark_group("P1-solver-periodic");
    for n in [4usize, 8, 12] {
        g.bench_with_input(BenchmarkId::new("k1", n), &n, |b, &n| {
            b.iter(|| {
                let mut s =
                    EfSolver::new(GamePair::new(periodic(n), periodic(n + 2), &Alphabet::ab()));
                s.equivalent(1)
            })
        });
    }
    g.finish();
}

fn solver_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("P1-solver-random-words");
    g.sample_size(20);
    for len in [4usize, 6, 8] {
        g.bench_with_input(BenchmarkId::new("k2", len), &len, |b, &len| {
            b.iter(|| {
                let mut s = EfSolver::new(GamePair::new(
                    lcg_word(len, 1),
                    lcg_word(len, 2),
                    &Alphabet::ab(),
                ));
                s.equivalent(2)
            })
        });
    }
    g.finish();
}

/// The E08 fooling confirmation `a¹²b¹² ≡₂ a¹⁴b¹²` — 47 s on the
/// pre-optimization solver, now a routine benchmark point. The counter
/// totals (states / memo hits / pruned moves) are printed once so the
/// inexpressibility report can cite them.
fn solver_e08(c: &mut Criterion) {
    let pair = || {
        GamePair::new(
            format!("{}{}", "a".repeat(12), "b".repeat(12)),
            format!("{}{}", "a".repeat(14), "b".repeat(12)),
            &Alphabet::ab(),
        )
    };
    let mut s = EfSolver::new(pair());
    assert!(s.equivalent(2));
    let stats = s.stats();
    println!(
        "P1/E08 counters: {} states, {} memo hits, {} pruned moves, {:.3?} wall",
        stats.states_explored, stats.memo_hits, stats.pruned_moves, stats.wall
    );
    let mut g = c.benchmark_group("P1-solver-e08");
    g.sample_size(10);
    g.bench_function("a12b12-vs-a14b12-k2", |b| {
        b.iter(|| EfSolver::new(pair()).equivalent(2))
    });
    g.finish();
}

criterion_group!(
    benches,
    solver_unary,
    solver_periodic,
    solver_random,
    solver_e08
);
criterion_main!(benches);
