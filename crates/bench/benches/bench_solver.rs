//! P1 — exact EF solver scaling: ≡_k decision vs word length and rank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_bench::{lcg_word, periodic, unary};
use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_words::Alphabet;

fn solver_unary(c: &mut Criterion) {
    let mut g = c.benchmark_group("P1-solver-unary");
    for n in [6usize, 10, 14, 18] {
        for k in [1u32, 2] {
            g.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &(n, k),
                |b, &(n, k)| {
                    b.iter(|| {
                        let mut s = EfSolver::new(GamePair::new(
                            unary(n),
                            unary(n + 2),
                            &Alphabet::unary(),
                        ));
                        s.equivalent(k)
                    })
                },
            );
        }
    }
    g.finish();
}

fn solver_periodic(c: &mut Criterion) {
    let mut g = c.benchmark_group("P1-solver-periodic");
    for n in [4usize, 8, 12] {
        g.bench_with_input(BenchmarkId::new("k1", n), &n, |b, &n| {
            b.iter(|| {
                let mut s =
                    EfSolver::new(GamePair::new(periodic(n), periodic(n + 2), &Alphabet::ab()));
                s.equivalent(1)
            })
        });
    }
    g.finish();
}

fn solver_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("P1-solver-random-words");
    g.sample_size(20);
    for len in [4usize, 6, 8] {
        g.bench_with_input(BenchmarkId::new("k2", len), &len, |b, &len| {
            b.iter(|| {
                let mut s = EfSolver::new(GamePair::new(
                    lcg_word(len, 1),
                    lcg_word(len, 2),
                    &Alphabet::ab(),
                ));
                s.equivalent(2)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, solver_unary, solver_periodic, solver_random);
criterion_main!(benches);
