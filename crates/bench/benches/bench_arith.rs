//! P10 — the semilinear arithmetic tier: O(1) unary/periodic ≡_k
//! verdicts vs the exact solver, table build costs, and the arith-tier
//! ablation on the E03 unary scan. The ≥100× unary-verdict acceptance
//! bound of the arith-tier PR is measured here and snapshotted into
//! BENCH_PR9.json by `scripts/bench_snapshot.sh`.

use criterion::{criterion_group, criterion_main, Criterion};
use fc_games::arith::{unary_class_table, ArithOracle};
use fc_games::batch::{periodic_table_builder, BatchConfig, BatchSolver, StructureArena};
use fc_games::solver::EfSolver;
use fc_games::{pow2, GamePair};
use fc_words::Word;

/// The headline: the k = 2 minimal-pair verdict `a¹² ≡₂ a¹⁴` as a warm
/// table lookup vs a fresh exact solver run. The acceptance bound of the
/// arith-tier PR (≥100×) is the ratio of these two legs.
fn arith_unary_verdict(c: &mut Criterion) {
    let oracle = ArithOracle::global();
    oracle.unary_table(2); // warm: the tier amortises the build per process
    let mut g = c.benchmark_group("P10-unary-verdict");
    g.bench_function("oracle-a12-a14-k2", |b| {
        b.iter(|| oracle.unary_verdict(12, 14, 2))
    });
    g.bench_function("solver-a12-a14-k2", |b| {
        b.iter(|| EfSolver::of(&"a".repeat(12), &"a".repeat(14)).equivalent(2))
    });
    g.finish();
}

/// Cold table builds (k ≤ 2 are the on-demand ones; k = 3 is opt-in and
/// benched out-of-band by the E03 runner, not here — minutes, not µs).
fn arith_table_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("P10-table-build");
    g.sample_size(10);
    for k in 0..=2u32 {
        g.bench_function(format!("unary-table-k{k}"), |b| {
            b.iter(|| unary_class_table(k, fc_games::arith::default_window(k)).unwrap())
        });
    }
    g.bench_function("periodic-table-ab-k2-window28", |b| {
        b.iter(|| periodic_table_builder(2, &Word::from("ab"), 28).unwrap())
    });
    g.finish();
}

/// The E03 minimal-pair scan and a purely-unary batch classify, with and
/// without the arith tier (the tier answers every pair, so the batch
/// builds zero structures and plays zero games).
fn arith_batch_ablation(c: &mut Criterion) {
    ArithOracle::global().unary_table(2);
    let words: Vec<Word> = (0..=20).map(|p| Word::from("a").pow(p)).collect();
    let mut g = c.benchmark_group("P10-batch-ablation");
    g.bench_function("scan-k2-limit20", |b| {
        b.iter(|| pow2::minimal_unary_pair(2, 20))
    });
    for (name, use_arith) in [("classify-arith", true), ("classify-exact", false)] {
        g.bench_function(format!("{name}-k2-limit20"), |b| {
            b.iter(|| {
                let (arena, ids) = StructureArena::for_words(&words);
                let mut batch = BatchSolver::with_config(
                    arena,
                    BatchConfig {
                        use_arith,
                        ..BatchConfig::default()
                    },
                );
                batch.classify(&ids, 2)
            })
        });
    }
    g.finish();
}

/// The periodic route: `(ab)¹² ≡₂ (ab)¹⁴` as a warm exponent-table
/// lookup vs a fresh solver game on the length-24/28 pair.
fn arith_periodic_verdict(c: &mut Criterion) {
    let oracle = ArithOracle::global();
    let root = Word::from("ab");
    oracle.periodic_table(2, &root, || {
        Some(periodic_table_builder(2, &root, 28).unwrap())
    });
    let w = root.pow(12);
    let v = root.pow(14);
    let mut g = c.benchmark_group("P10-periodic-verdict");
    g.bench_function("oracle-ab12-ab14-k2", |b| {
        b.iter(|| ArithOracle::global().verdict_words(w.bytes(), v.bytes(), 2, false, |_| None))
    });
    g.bench_function("solver-ab12-ab14-k2", |b| {
        b.iter(|| EfSolver::new(GamePair::of(w.as_str(), v.as_str())).equivalent(2))
    });
    g.finish();
}

criterion_group!(
    benches,
    arith_unary_verdict,
    arith_table_build,
    arith_batch_ablation,
    arith_periodic_verdict
);
criterion_main!(benches);
