//! P3 — FC model checking: scaling, the guarded-vs-naive ablation, and
//! the compile-once-vs-recompile window ablation for the staged engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_logic::eval::{holds, holds_naive, Assignment};
use fc_logic::{language, library, FactorStructure, Plan};
use fc_words::{fibonacci, Alphabet};

fn square_language(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-phi-square");
    for n in [4usize, 8, 12, 16] {
        let w = fc_bench::periodic(n / 2);
        let s = FactorStructure::new(w, &Alphabet::ab());
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            let phi = library::phi_square();
            b.iter(|| holds(&phi, s, &Assignment::new()))
        });
    }
    g.finish();
}

fn fib_guarded_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-phi-fib-ablation");
    g.sample_size(10);
    let phi = library::phi_fib();
    for n in [1usize, 2] {
        let member = fibonacci::l_fib_member(n);
        let s = FactorStructure::new(member, &Alphabet::abc());
        g.bench_with_input(BenchmarkId::new("guarded", n), &s, |b, s| {
            b.iter(|| holds(&phi, s, &Assignment::new()))
        });
        if n <= 1 {
            g.bench_with_input(BenchmarkId::new("naive", n), &s, |b, s| {
                b.iter(|| holds_naive(&phi, s, &Assignment::new()))
            });
        }
    }
    // Guarded-only for the larger member (naive is infeasible — the point).
    let member = fibonacci::l_fib_member(3);
    let s = FactorStructure::new(member, &Alphabet::abc());
    g.bench_function("guarded/3", |b| {
        b.iter(|| holds(&phi, &s, &Assignment::new()))
    });
    g.finish();
}

fn vbv_rank5(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-phi-vbv");
    let phi = library::phi_vbv();
    for p in [3usize, 5, 7] {
        let w = format!("{}b{}", "a".repeat(p), "a".repeat(p));
        let s = FactorStructure::of_str(&w, &Alphabet::ab());
        g.bench_with_input(BenchmarkId::from_parameter(p), &s, |b, s| {
            b.iter(|| holds(&phi, s, &Assignment::new()))
        });
    }
    g.finish();
}

/// The tentpole ablation: sweeping L(φ) over a whole window Σ^{≤n}
/// (a) recompiling per word — what `holds` in a loop used to cost,
/// (b) compiling one plan and reusing it, and
/// (c) the same one plan fanned out across threads.
fn window_plan_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-window-plan-reuse");
    g.sample_size(10);
    let sigma = Alphabet::ab();
    // Two workloads: a pure word-equation sentence (compile is cheap,
    // reuse saves only the lowering) and a regex-heavy sentence from the
    // bounded-transfer layer (per-word recompilation rebuilds every DFA,
    // which is exactly the rework the plan hoists out of the loop).
    let equational = library::phi_square();
    let regex_heavy = library::on_whole_word(|x| {
        fc_logic::Formula::and([
            library::constraint_from_pattern(x, "(a|b)*"),
            fc_logic::Formula::or([
                library::constraint_from_pattern(x, "(ab)*"),
                library::constraint_from_pattern(x, "a*(ba)*"),
            ]),
        ])
    });
    for (tag, phi, max_len) in [
        ("equational", &equational, 8usize),
        ("regex-heavy", &regex_heavy, 6),
    ] {
        g.bench_with_input(
            BenchmarkId::new("recompile-per-word", tag),
            &max_len,
            |b, &n| {
                b.iter(|| {
                    sigma
                        .words_up_to(n)
                        .filter(|w| {
                            let s = FactorStructure::new(w.clone(), &sigma);
                            holds(phi, &s, &Assignment::new())
                        })
                        .count()
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("one-plan", tag), &max_len, |b, &n| {
            b.iter(|| language::language_window(phi, &sigma, n).len())
        });
        g.bench_with_input(BenchmarkId::new("one-plan-par4", tag), &max_len, |b, &n| {
            b.iter(|| language::language_window_par(phi, &sigma, n, 4).len())
        });
    }
    g.finish();
}

/// Plan compilation itself: the fixed cost the window sweep amortises.
fn plan_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-plan-compile");
    let fib = library::phi_fib();
    g.bench_function("phi_fib", |b| b.iter(|| Plan::compile(&fib).node_count()));
    let square = library::phi_square();
    g.bench_function("phi_square", |b| {
        b.iter(|| Plan::compile(&square).node_count())
    });
    g.finish();
}

criterion_group!(
    benches,
    square_language,
    fib_guarded_vs_naive,
    vbv_rank5,
    window_plan_reuse,
    plan_compile
);
criterion_main!(benches);
