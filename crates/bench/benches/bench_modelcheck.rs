//! P3 — FC model checking: scaling and the guarded-vs-naive ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_logic::eval::{holds, holds_naive, Assignment};
use fc_logic::{library, FactorStructure};
use fc_words::{fibonacci, Alphabet};

fn square_language(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-phi-square");
    for n in [4usize, 8, 12, 16] {
        let w = fc_bench::periodic(n / 2);
        let s = FactorStructure::new(w, &Alphabet::ab());
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            let phi = library::phi_square();
            b.iter(|| holds(&phi, s, &Assignment::new()))
        });
    }
    g.finish();
}

fn fib_guarded_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-phi-fib-ablation");
    g.sample_size(10);
    let phi = library::phi_fib();
    for n in [1usize, 2] {
        let member = fibonacci::l_fib_member(n);
        let s = FactorStructure::new(member, &Alphabet::abc());
        g.bench_with_input(BenchmarkId::new("guarded", n), &s, |b, s| {
            b.iter(|| holds(&phi, s, &Assignment::new()))
        });
        if n <= 1 {
            g.bench_with_input(BenchmarkId::new("naive", n), &s, |b, s| {
                b.iter(|| holds_naive(&phi, s, &Assignment::new()))
            });
        }
    }
    // Guarded-only for the larger member (naive is infeasible — the point).
    let member = fibonacci::l_fib_member(3);
    let s = FactorStructure::new(member, &Alphabet::abc());
    g.bench_function("guarded/3", |b| {
        b.iter(|| holds(&phi, &s, &Assignment::new()))
    });
    g.finish();
}

fn vbv_rank5(c: &mut Criterion) {
    let mut g = c.benchmark_group("P3-phi-vbv");
    let phi = library::phi_vbv();
    for p in [3usize, 5, 7] {
        let w = format!("{}b{}", "a".repeat(p), "a".repeat(p));
        let s = FactorStructure::of_str(&w, &Alphabet::ab());
        g.bench_with_input(BenchmarkId::from_parameter(p), &s, |b, s| {
            b.iter(|| holds(&phi, s, &Assignment::new()))
        });
    }
    g.finish();
}

criterion_group!(benches, square_language, fib_guarded_vs_naive, vbv_rank5);
criterion_main!(benches);
