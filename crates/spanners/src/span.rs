//! Spans and span relations.
//!
//! A *span* `[i, j⟩` of a document `d` (0-based, half-open, `i ≤ j ≤ |d|`)
//! identifies the occurrence `d[i..j]`. A *span relation* is a set of
//! tuples of spans under a fixed variable schema — the output type of
//! spanners.

use std::collections::BTreeSet;
use std::fmt;

/// A span `[start, end⟩` with `start ≤ end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Inclusive start position.
    pub start: usize,
    /// Exclusive end position.
    pub end: usize,
}

impl Span {
    /// Constructs a span; panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Span {
        assert!(start <= end, "invalid span [{start}, {end}⟩");
        Span { start, end }
    }

    /// The spanned content of `doc`.
    pub fn content<'d>(&self, doc: &'d [u8]) -> &'d [u8] {
        &doc[self.start..self.end]
    }

    /// Length of the span.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}⟩", self.start, self.end)
    }
}

/// A span relation: a schema (sorted variable names) plus a set of tuples,
/// each tuple assigning one span per schema variable (positionally).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRelation {
    /// Variable names, sorted; tuples are ordered accordingly.
    pub schema: Vec<String>,
    /// The tuples.
    pub tuples: BTreeSet<Vec<Span>>,
}

impl SpanRelation {
    /// The empty relation over a schema.
    pub fn empty(schema: impl IntoIterator<Item = String>) -> SpanRelation {
        let mut schema: Vec<String> = schema.into_iter().collect();
        schema.sort();
        schema.dedup();
        SpanRelation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// The Boolean relation {⟨⟩} (schema-less, non-empty) — "true".
    pub fn unit() -> SpanRelation {
        let mut tuples = BTreeSet::new();
        tuples.insert(Vec::new());
        SpanRelation {
            schema: Vec::new(),
            tuples,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Index of a variable in the schema.
    pub fn index_of(&self, var: &str) -> Option<usize> {
        self.schema.iter().position(|v| v == var)
    }

    /// Inserts a tuple given as (var, span) pairs; missing/extra variables
    /// are an error.
    pub fn insert_named(&mut self, assignment: &[(&str, Span)]) {
        assert_eq!(assignment.len(), self.schema.len(), "arity mismatch");
        let mut tuple = vec![Span::new(0, 0); self.schema.len()];
        for (var, span) in assignment {
            let idx = self
                .index_of(var)
                .unwrap_or_else(|| panic!("variable {var} not in schema {:?}", self.schema));
            tuple[idx] = *span;
        }
        self.tuples.insert(tuple);
    }

    /// Renders the relation contents against a document (for examples and
    /// debugging).
    pub fn render(&self, doc: &[u8]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:?}\n", self.schema));
        for t in &self.tuples {
            let cells: Vec<String> = t
                .iter()
                .map(|s| format!("{}={:?}", s, String::from_utf8_lossy(s.content(doc))))
                .collect();
            out.push_str(&format!("  ({})\n", cells.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(1, 4);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.content(b"abcdef"), b"bcd");
        assert_eq!(Span::new(2, 2).content(b"abc"), b"");
        assert_eq!(s.to_string(), "[1, 4⟩");
    }

    #[test]
    #[should_panic(expected = "invalid span")]
    fn invalid_span_panics() {
        let _ = Span::new(3, 2);
    }

    #[test]
    fn relation_schema_is_sorted() {
        let r = SpanRelation::empty(["y".into(), "x".into(), "x".into()]);
        assert_eq!(r.schema, vec!["x", "y"]);
        assert!(r.is_empty());
    }

    #[test]
    fn insert_named_orders_by_schema() {
        let mut r = SpanRelation::empty(["y".into(), "x".into()]);
        r.insert_named(&[("y", Span::new(2, 3)), ("x", Span::new(0, 1))]);
        let t = r.tuples.iter().next().unwrap();
        assert_eq!(t[0], Span::new(0, 1)); // x first
        assert_eq!(t[1], Span::new(2, 3));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unit_is_boolean_true() {
        let u = SpanRelation::unit();
        assert!(!u.is_empty());
        assert!(u.schema.is_empty());
    }

    #[test]
    fn render_contains_contents() {
        let mut r = SpanRelation::empty(["x".into()]);
        r.insert_named(&[("x", Span::new(0, 2))]);
        let text = r.render(b"abc");
        assert!(text.contains("ab"), "{text}");
    }
}
