//! Spanner expression trees: core and generalized core spanners.
//!
//! A [`Spanner`] is an algebra expression over regex-formula leaves. The
//! classes of the paper:
//!
//! - **regular spanners**: regex formulas + {∪, π, ⋈};
//! - **core spanners**: + ζ= (string-equality selection);
//! - **generalized core spanners**: + ∖ (difference);
//! - extension by ζ^R (generic relation selection) — the operator whose
//!   eliminability defines *selectability*.
//!
//! [`Spanner::class`] classifies an expression; [`Spanner::evaluate`] runs
//! it on a document.

use crate::algebra;
use crate::regex_formula::RegexFormula;
use crate::span::SpanRelation;
use std::fmt;
use std::rc::Rc;

/// Which spanner class an expression falls into (smallest applicable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpannerClass {
    /// Regex formulas with ∪, π, ⋈ only.
    Regular,
    /// Regular + ζ=.
    Core,
    /// Core + difference.
    GeneralizedCore,
    /// Uses a generic ζ^R selection.
    Extended,
}

/// A relation predicate for ζ^R selections (over span contents).
pub type RelPredicate = Rc<dyn Fn(&[&[u8]]) -> bool>;

/// A spanner expression.
#[derive(Clone)]
pub enum Spanner {
    /// A regex-formula leaf.
    Regex(Rc<RegexFormula>),
    /// Union.
    Union(Rc<Spanner>, Rc<Spanner>),
    /// Projection onto the listed variables.
    Project(Vec<String>, Rc<Spanner>),
    /// Natural join.
    Join(Rc<Spanner>, Rc<Spanner>),
    /// Difference.
    Difference(Rc<Spanner>, Rc<Spanner>),
    /// String-equality selection ζ=_{x,y}.
    EqSelect(String, String, Rc<Spanner>),
    /// Generic relation selection ζ^R over the listed variables.
    RelSelect(Vec<String>, String, RelPredicate, Rc<Spanner>),
}

impl Spanner {
    /// Leaf constructor.
    pub fn regex(g: Rc<RegexFormula>) -> Rc<Spanner> {
        Rc::new(Spanner::Regex(g))
    }

    /// ζ=_{x,y} constructor.
    pub fn eq_select(x: &str, y: &str, inner: Rc<Spanner>) -> Rc<Spanner> {
        Rc::new(Spanner::EqSelect(x.to_string(), y.to_string(), inner))
    }

    /// ζ^R constructor (with a display name for the relation).
    pub fn rel_select(
        vars: &[&str],
        name: &str,
        predicate: impl Fn(&[&[u8]]) -> bool + 'static,
        inner: Rc<Spanner>,
    ) -> Rc<Spanner> {
        Rc::new(Spanner::RelSelect(
            vars.iter().map(|v| v.to_string()).collect(),
            name.to_string(),
            Rc::new(predicate),
            inner,
        ))
    }

    /// The output schema (sorted variable names).
    pub fn schema(&self) -> Vec<String> {
        match self {
            Spanner::Regex(g) => g.variables(),
            Spanner::Union(a, _) => a.schema(),
            Spanner::Project(vars, _) => {
                let mut v = vars.clone();
                v.sort();
                v.dedup();
                v
            }
            Spanner::Join(a, b) => {
                let mut v = a.schema();
                v.extend(b.schema());
                v.sort();
                v.dedup();
                v
            }
            Spanner::Difference(a, _) => a.schema(),
            Spanner::EqSelect(_, _, inner) => inner.schema(),
            Spanner::RelSelect(_, _, _, inner) => inner.schema(),
        }
    }

    /// The smallest spanner class containing this expression.
    pub fn class(&self) -> SpannerClass {
        match self {
            Spanner::Regex(_) => SpannerClass::Regular,
            Spanner::Union(a, b) | Spanner::Join(a, b) => a.class().max(b.class()),
            Spanner::Project(_, inner) => inner.class(),
            Spanner::Difference(a, b) => {
                a.class().max(b.class()).max(SpannerClass::GeneralizedCore)
            }
            Spanner::EqSelect(_, _, inner) => inner.class().max(SpannerClass::Core),
            Spanner::RelSelect(..) => SpannerClass::Extended,
        }
    }

    /// Evaluates the expression on a document.
    pub fn evaluate(&self, doc: &[u8]) -> SpanRelation {
        match self {
            Spanner::Regex(g) => g.evaluate(doc),
            Spanner::Union(a, b) => algebra::union(&a.evaluate(doc), &b.evaluate(doc)),
            Spanner::Project(vars, inner) => {
                let refs: Vec<&str> = vars.iter().map(String::as_str).collect();
                algebra::project(&inner.evaluate(doc), &refs)
            }
            Spanner::Join(a, b) => algebra::join(&a.evaluate(doc), &b.evaluate(doc)),
            Spanner::Difference(a, b) => algebra::difference(&a.evaluate(doc), &b.evaluate(doc)),
            Spanner::EqSelect(x, y, inner) => algebra::eq_select(&inner.evaluate(doc), doc, x, y),
            Spanner::RelSelect(vars, _, pred, inner) => {
                let refs: Vec<&str> = vars.iter().map(String::as_str).collect();
                algebra::rel_select(&inner.evaluate(doc), doc, &refs, |c| pred(c))
            }
        }
    }

    /// Boolean semantics: non-emptiness of the output (how spanners define
    /// languages).
    pub fn accepts(&self, doc: &[u8]) -> bool {
        !self.evaluate(doc).is_empty()
    }
}

impl fmt::Debug for Spanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spanner::Regex(_) => write!(f, "γ"),
            Spanner::Union(a, b) => write!(f, "({a:?} ∪ {b:?})"),
            Spanner::Project(v, i) => write!(f, "π_{v:?}({i:?})"),
            Spanner::Join(a, b) => write!(f, "({a:?} ⋈ {b:?})"),
            Spanner::Difference(a, b) => write!(f, "({a:?} ∖ {b:?})"),
            Spanner::EqSelect(x, y, i) => write!(f, "ζ=_{{{x},{y}}}({i:?})"),
            Spanner::RelSelect(v, name, _, i) => write!(f, "ζ^{name}_{v:?}({i:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    /// x{Σ*} y{Σ*} — all ways to split the document in two.
    fn two_split() -> Rc<Spanner> {
        Spanner::regex(RegexFormula::cat([
            RegexFormula::capture("x", RegexFormula::any_star()),
            RegexFormula::capture("y", RegexFormula::any_star()),
        ]))
    }

    #[test]
    fn classes_are_computed() {
        let base = two_split();
        assert_eq!(base.class(), SpannerClass::Regular);
        let core = Spanner::eq_select("x", "y", base.clone());
        assert_eq!(core.class(), SpannerClass::Core);
        let gen = Rc::new(Spanner::Difference(base.clone(), base.clone()));
        assert_eq!(gen.class(), SpannerClass::GeneralizedCore);
        let ext = Spanner::rel_select(&["x", "y"], "len", |c| c[0].len() == c[1].len(), base);
        assert_eq!(ext.class(), SpannerClass::Extended);
    }

    #[test]
    fn ww_language_via_equality_selection() {
        // L = {ww}: split x·y with x = y (contents): classic core-spanner
        // example (paper Example 2.3's φ_ww on the spanner side).
        let s = Spanner::eq_select("x", "y", two_split());
        assert!(s.accepts(b"abab"));
        assert!(s.accepts(b""));
        assert!(!s.accepts(b"aba"));
        assert!(!s.accepts(b"abba"));
    }

    #[test]
    fn difference_removes_tuples() {
        let all = two_split();
        let equal = Spanner::eq_select("x", "y", all.clone());
        let unequal = Rc::new(Spanner::Difference(all.clone(), equal.clone()));
        let doc = b"abab";
        let total = all.evaluate(doc).len();
        let eq = equal.evaluate(doc).len();
        let diff = unequal.evaluate(doc).len();
        assert_eq!(total, eq + diff);
        assert_eq!(unequal.class(), SpannerClass::GeneralizedCore);
    }

    #[test]
    fn projection_and_join_pipeline() {
        let s = Spanner::eq_select("x", "y", two_split());
        let px = Rc::new(Spanner::Project(vec!["x".into()], s));
        let doc = b"abab";
        let r = px.evaluate(doc);
        assert_eq!(r.schema, vec!["x"]);
        // x can be ε or "ab" (the two equal splits: ε·abab? no — x=ε needs
        // y=abab with equal contents — not equal; valid: x=ab,y=ab).
        assert_eq!(r.len(), 1);
        assert!(r.tuples.contains(&vec![Span::new(0, 2)]));
    }

    #[test]
    fn boolean_semantics() {
        // Words containing "aa": Σ*·aa·Σ* as a Boolean spanner.
        let s = Spanner::regex(RegexFormula::extractor(RegexFormula::pattern("aa")));
        assert!(s.accepts(b"baab"));
        assert!(!s.accepts(b"abab"));
    }

    #[test]
    fn rel_select_length_equality() {
        // ζ^len over the split spanner accepts exactly even-length docs.
        let s = Spanner::rel_select(
            &["x", "y"],
            "len",
            |c| c[0].len() == c[1].len(),
            two_split(),
        );
        assert!(s.accepts(b"ab"));
        assert!(s.accepts(b"abab"));
        assert!(!s.accepts(b"aba"));
        assert!(s.accepts(b""));
    }
}
