//! Variable-set automata (vset-automata) — the operational representation
//! of regex formulas in the spanner literature (Fagin et al.).
//!
//! A vset-automaton is an ε-NFA whose transitions additionally carry
//! *variable operations* `x⊢` (open) and `⊣x` (close). A run over a
//! document is *valid* when every variable is opened exactly once and
//! closed exactly once, after its opening; the assignment read off the
//! markers is the output tuple.
//!
//! [`VSetAutomaton::compile`] performs the Thompson-style construction
//! from a (functional) [`RegexFormula`]; [`VSetAutomaton::evaluate`]
//! enumerates all valid runs by memoized search. The property suite
//! cross-validates this backend against the direct AST matcher — the two
//! implementations are independent, which is exactly what makes the
//! cross-check meaningful.

use crate::regex_formula::RegexFormula;
use crate::span::{Span, SpanRelation};
use std::collections::HashSet;

/// A transition label.
#[derive(Clone, Debug, PartialEq, Eq)]
enum VLabel {
    Eps,
    Sym(u8),
    Any,
    Open(usize),
    Close(usize),
}

/// A compiled vset-automaton.
#[derive(Clone, Debug)]
pub struct VSetAutomaton {
    edges: Vec<Vec<(VLabel, usize)>>,
    start: usize,
    accept: usize,
    /// Variable names, indexed by the ids used in Open/Close.
    variables: Vec<String>,
}

impl VSetAutomaton {
    /// Compiles a functional regex formula.
    ///
    /// # Panics
    /// Panics if the formula is not functional.
    pub fn compile(formula: &RegexFormula) -> VSetAutomaton {
        formula
            .check_functional()
            .unwrap_or_else(|e| panic!("non-functional regex formula: {e}"));
        let variables = formula.variables();
        let mut a = VSetAutomaton {
            edges: Vec::new(),
            start: 0,
            accept: 0,
            variables: variables.clone(),
        };
        let (s, t) = a.build(formula);
        a.start = s;
        a.accept = t;
        a
    }

    /// The automaton's variables (sorted, = the output schema).
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    fn var_id(&self, name: &str) -> usize {
        self.variables
            .iter()
            .position(|v| v == name)
            .expect("known variable")
    }

    fn new_state(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.edges.len() - 1
    }

    fn build(&mut self, f: &RegexFormula) -> (usize, usize) {
        match f {
            RegexFormula::Empty => {
                let s = self.new_state();
                let t = self.new_state();
                (s, t)
            }
            RegexFormula::Epsilon => {
                let s = self.new_state();
                let t = self.new_state();
                self.edges[s].push((VLabel::Eps, t));
                (s, t)
            }
            RegexFormula::Sym(c) => {
                let s = self.new_state();
                let t = self.new_state();
                self.edges[s].push((VLabel::Sym(*c), t));
                (s, t)
            }
            RegexFormula::AnySym => {
                let s = self.new_state();
                let t = self.new_state();
                self.edges[s].push((VLabel::Any, t));
                (s, t)
            }
            RegexFormula::Concat(l, r) => {
                let (ls, lt) = self.build(l);
                let (rs, rt) = self.build(r);
                self.edges[lt].push((VLabel::Eps, rs));
                (ls, rt)
            }
            RegexFormula::Union(l, r) => {
                let s = self.new_state();
                let (ls, lt) = self.build(l);
                let (rs, rt) = self.build(r);
                let t = self.new_state();
                self.edges[s].push((VLabel::Eps, ls));
                self.edges[s].push((VLabel::Eps, rs));
                self.edges[lt].push((VLabel::Eps, t));
                self.edges[rt].push((VLabel::Eps, t));
                (s, t)
            }
            RegexFormula::Star(inner) => {
                let s = self.new_state();
                let (is, it) = self.build(inner);
                let t = self.new_state();
                self.edges[s].push((VLabel::Eps, is));
                self.edges[s].push((VLabel::Eps, t));
                self.edges[it].push((VLabel::Eps, is));
                self.edges[it].push((VLabel::Eps, t));
                (s, t)
            }
            RegexFormula::Capture(x, inner) => {
                let id = self.var_id(x);
                let s = self.new_state();
                let (is, it) = self.build(inner);
                let t = self.new_state();
                self.edges[s].push((VLabel::Open(id), is));
                self.edges[it].push((VLabel::Close(id), t));
                (s, t)
            }
        }
    }

    /// Enumerates all valid runs over `doc` and returns the span relation.
    pub fn evaluate(&self, doc: &[u8]) -> SpanRelation {
        let k = self.variables.len();
        let mut relation = SpanRelation::empty(self.variables.iter().cloned());
        // Search state: (automaton state, position, per-var open/close).
        type Marks = Vec<(Option<usize>, Option<usize>)>;
        let mut visited: HashSet<(usize, usize, Marks)> = HashSet::new();
        let mut stack: Vec<(usize, usize, Marks)> = vec![(self.start, 0, vec![(None, None); k])];
        while let Some((q, pos, marks)) = stack.pop() {
            if !visited.insert((q, pos, marks.clone())) {
                continue;
            }
            if q == self.accept
                && pos == doc.len()
                && marks.iter().all(|&(o, c)| o.is_some() && c.is_some())
            {
                let tuple: Vec<Span> = marks
                    .iter()
                    .map(|&(o, c)| Span::new(o.unwrap(), c.unwrap()))
                    .collect();
                relation.tuples.insert(tuple);
            }
            for (label, t) in &self.edges[q] {
                match label {
                    VLabel::Eps => stack.push((*t, pos, marks.clone())),
                    VLabel::Sym(c) => {
                        if pos < doc.len() && doc[pos] == *c {
                            stack.push((*t, pos + 1, marks.clone()));
                        }
                    }
                    VLabel::Any => {
                        if pos < doc.len() {
                            stack.push((*t, pos + 1, marks.clone()));
                        }
                    }
                    VLabel::Open(id) => {
                        if marks[*id].0.is_none() {
                            let mut m = marks.clone();
                            m[*id].0 = Some(pos);
                            stack.push((*t, pos, m));
                        }
                    }
                    VLabel::Close(id) => {
                        if marks[*id].0.is_some() && marks[*id].1.is_none() {
                            let mut m = marks.clone();
                            m[*id].1 = Some(pos);
                            stack.push((*t, pos, m));
                        }
                    }
                }
            }
        }
        relation
    }

    /// Boolean acceptance through the automaton backend.
    pub fn accepts(&self, doc: &[u8]) -> bool {
        !self.evaluate(doc).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex_formula::RegexFormula as RF;
    use fc_words::Alphabet;

    fn cross_check(f: &RF, doc: &[u8]) {
        let direct = f.evaluate(doc);
        let automaton = VSetAutomaton::compile(f).evaluate(doc);
        assert_eq!(
            direct,
            automaton,
            "doc={:?} f={f:?}",
            String::from_utf8_lossy(doc)
        );
    }

    #[test]
    fn agrees_with_ast_matcher_on_extractors() {
        let f = RF::extractor(RF::capture("x", RF::pattern("ab")));
        for doc in ["", "ab", "abab", "bba", "aabbaabb"] {
            cross_check(&f, doc.as_bytes());
        }
    }

    #[test]
    fn agrees_on_two_variable_splits() {
        let f = RF::cat([
            RF::capture("x", RF::any_star()),
            RF::capture("y", RF::any_star()),
        ]);
        for doc in ["", "a", "abc"] {
            cross_check(&f, doc.as_bytes());
        }
    }

    #[test]
    fn agrees_on_unions_and_stars() {
        let f = RF::cat([
            RF::pattern("(a|b)*"),
            RF::capture("x", RF::alt([RF::pattern("aa"), RF::pattern("bb")])),
            RF::pattern("(a|b)*"),
        ]);
        for doc in ["aa", "abba", "abab", "bbaa"] {
            cross_check(&f, doc.as_bytes());
        }
    }

    #[test]
    fn exhaustive_window_cross_validation() {
        let sigma = Alphabet::ab();
        let formulas = [
            RF::extractor(RF::capture("x", RF::pattern("a+"))),
            RF::cat([
                RF::capture("x", RF::pattern("a*")),
                RF::capture("y", RF::pattern("(ba)*")),
            ]),
            RF::capture(
                "x",
                RF::cat([RF::capture("y", RF::any_star()), RF::any_star()]),
            ),
        ];
        for f in &formulas {
            for w in sigma.words_up_to(5) {
                cross_check(f, w.bytes());
            }
        }
    }

    #[test]
    fn compile_rejects_nonfunctional() {
        let bad = RF::cat([
            RF::capture("x", RF::pattern("a")),
            RF::capture("x", RF::pattern("b")),
        ]);
        let r = std::panic::catch_unwind(|| VSetAutomaton::compile(&bad));
        assert!(r.is_err());
    }

    #[test]
    fn state_count_is_linear_in_formula() {
        let f = RF::extractor(RF::capture("x", RF::pattern("(ab)+c?")));
        let a = VSetAutomaton::compile(&f);
        assert!(a.len() < 40, "blew up: {} states", a.len());
        assert_eq!(a.variables(), &["x".to_string()]);
    }
}
