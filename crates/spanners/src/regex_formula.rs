//! Regex formulas: regular expressions with capture variables.
//!
//! A regex formula γ (Fagin et al.) extends regular expressions with
//! variable bindings `x{γ'}`. Evaluated on a document `d`, it produces the
//! span relation `⟦γ⟧(d)` of all variable-to-span assignments arising from
//! matches of γ against the *whole* document. (The common "extractor"
//! idiom wraps the body in `Σ* · … · Σ*`, as the paper's introduction
//! example `γ(x) := Σ*·x{misspelling}·Σ*` does.)
//!
//! We require **functional** regex formulas: every variable is bound
//! exactly once along every match path (the standard well-formedness
//! class); [`RegexFormula::check_functional`] enforces it syntactically.
//!
//! Evaluation is an exact, memoized span matcher: `match(node, i, j)`
//! computes all capture assignments under which the node matches
//! `d[i..j]`; concatenation joins adjacent splits, star iterates
//! (variable-free bodies only, per functionality). Complexity is
//! polynomial in `|d|` per node with output-sensitive assignment sets —
//! entirely adequate for the exact evaluation the experiments need.

use crate::span::{Span, SpanRelation};
use fc_reglang::Regex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

/// A regex formula node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegexFormula {
    /// ∅.
    Empty,
    /// ε.
    Epsilon,
    /// A terminal symbol.
    Sym(u8),
    /// Any single symbol from the document alphabet (`.` / Σ).
    AnySym,
    /// Concatenation.
    Concat(Rc<RegexFormula>, Rc<RegexFormula>),
    /// Union.
    Union(Rc<RegexFormula>, Rc<RegexFormula>),
    /// Kleene star (body must be variable-free).
    Star(Rc<RegexFormula>),
    /// Variable binding `x{γ}`.
    Capture(String, Rc<RegexFormula>),
}

/// One capture assignment: variable → span.
pub type Captures = BTreeMap<String, Span>;

impl RegexFormula {
    /// `x{γ}`.
    pub fn capture(x: &str, inner: Rc<RegexFormula>) -> Rc<RegexFormula> {
        Rc::new(RegexFormula::Capture(x.to_string(), inner))
    }

    /// Lifts a plain regex (no variables).
    pub fn from_regex(re: &Regex) -> Rc<RegexFormula> {
        Rc::new(match re {
            Regex::Empty => RegexFormula::Empty,
            Regex::Epsilon => RegexFormula::Epsilon,
            Regex::Sym(c) => RegexFormula::Sym(*c),
            Regex::Concat(l, r) => {
                RegexFormula::Concat(RegexFormula::from_regex(l), RegexFormula::from_regex(r))
            }
            Regex::Union(l, r) => {
                RegexFormula::Union(RegexFormula::from_regex(l), RegexFormula::from_regex(r))
            }
            Regex::Star(i) => RegexFormula::Star(RegexFormula::from_regex(i)),
        })
    }

    /// Parses a plain-regex pattern (see `fc_reglang::Regex::parse`) into a
    /// variable-free formula.
    pub fn pattern(src: &str) -> Rc<RegexFormula> {
        RegexFormula::from_regex(&Regex::parse(src).unwrap_or_else(|e| panic!("{src}: {e}")))
    }

    /// `Σ*` (any content).
    pub fn any_star() -> Rc<RegexFormula> {
        Rc::new(RegexFormula::Star(Rc::new(RegexFormula::AnySym)))
    }

    /// Concatenation helper.
    pub fn cat(parts: impl IntoIterator<Item = Rc<RegexFormula>>) -> Rc<RegexFormula> {
        let mut it = parts.into_iter();
        let first = it.next().unwrap_or_else(|| Rc::new(RegexFormula::Epsilon));
        it.fold(first, |acc, p| Rc::new(RegexFormula::Concat(acc, p)))
    }

    /// Union helper.
    pub fn alt(parts: impl IntoIterator<Item = Rc<RegexFormula>>) -> Rc<RegexFormula> {
        let mut it = parts.into_iter();
        let first = it.next().unwrap_or_else(|| Rc::new(RegexFormula::Empty));
        it.fold(first, |acc, p| Rc::new(RegexFormula::Union(acc, p)))
    }

    /// The extractor idiom `Σ* · γ · Σ*`.
    pub fn extractor(inner: Rc<RegexFormula>) -> Rc<RegexFormula> {
        RegexFormula::cat([RegexFormula::any_star(), inner, RegexFormula::any_star()])
    }

    /// The variables bound in the formula (sorted, deduplicated).
    pub fn variables(&self) -> Vec<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            RegexFormula::Concat(l, r) | RegexFormula::Union(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            RegexFormula::Star(i) => i.collect_vars(out),
            RegexFormula::Capture(x, i) => {
                out.insert(x.clone());
                i.collect_vars(out);
            }
            _ => {}
        }
    }

    /// Checks functionality: every variable bound exactly once on every
    /// match path. Rules: concatenation/capture bind disjoint variable
    /// sets; union branches bind the *same* set; star bodies bind none.
    ///
    /// # Errors
    /// A human-readable description of the first violation.
    pub fn check_functional(&self) -> Result<(), String> {
        self.functional_vars().map(|_| ())
    }

    fn functional_vars(&self) -> Result<BTreeSet<String>, String> {
        match self {
            RegexFormula::Empty
            | RegexFormula::Epsilon
            | RegexFormula::Sym(_)
            | RegexFormula::AnySym => Ok(BTreeSet::new()),
            RegexFormula::Concat(l, r) => {
                let vl = l.functional_vars()?;
                let vr = r.functional_vars()?;
                if let Some(dup) = vl.intersection(&vr).next() {
                    return Err(format!("variable {dup} bound twice in a concatenation"));
                }
                Ok(vl.union(&vr).cloned().collect())
            }
            RegexFormula::Union(l, r) => {
                let vl = l.functional_vars()?;
                let vr = r.functional_vars()?;
                if vl != vr {
                    return Err(format!(
                        "union branches bind different variables: {vl:?} vs {vr:?}"
                    ));
                }
                Ok(vl)
            }
            RegexFormula::Star(i) => {
                let vi = i.functional_vars()?;
                if !vi.is_empty() {
                    return Err(format!("star body binds variables {vi:?}"));
                }
                Ok(vi)
            }
            RegexFormula::Capture(x, i) => {
                let mut vi = i.functional_vars()?;
                if vi.contains(x) {
                    return Err(format!("variable {x} bound inside its own capture"));
                }
                vi.insert(x.clone());
                Ok(vi)
            }
        }
    }

    /// Evaluates the formula on the whole document: the span relation over
    /// the formula's variables.
    ///
    /// # Panics
    /// Panics if the formula is not functional.
    pub fn evaluate(&self, doc: &[u8]) -> SpanRelation {
        self.check_functional()
            .unwrap_or_else(|e| panic!("non-functional regex formula: {e}"));
        let vars = self.variables();
        let mut relation = SpanRelation::empty(vars.iter().cloned());
        let mut matcher = Matcher {
            doc,
            memo: HashMap::new(),
        };
        for captures in matcher.matches(self, 0, doc.len()).iter() {
            let tuple: Vec<Span> = relation
                .schema
                .iter()
                .map(|v| captures[v.as_str()])
                .collect();
            relation.tuples.insert(tuple);
        }
        relation
    }

    /// Boolean acceptance: does the formula match the whole document under
    /// at least one assignment?
    pub fn accepts(&self, doc: &[u8]) -> bool {
        !self.evaluate(doc).is_empty()
    }
}

struct Matcher<'d> {
    doc: &'d [u8],
    memo: HashMap<(usize, usize, usize), Rc<Vec<Captures>>>,
}

impl Matcher<'_> {
    fn matches(&mut self, node: &RegexFormula, i: usize, j: usize) -> Rc<Vec<Captures>> {
        let key = (node as *const RegexFormula as usize, i, j);
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        let result: Vec<Captures> = match node {
            RegexFormula::Empty => Vec::new(),
            RegexFormula::Epsilon => {
                if i == j {
                    vec![Captures::new()]
                } else {
                    Vec::new()
                }
            }
            RegexFormula::Sym(c) => {
                if j == i + 1 && self.doc[i] == *c {
                    vec![Captures::new()]
                } else {
                    Vec::new()
                }
            }
            RegexFormula::AnySym => {
                if j == i + 1 {
                    vec![Captures::new()]
                } else {
                    Vec::new()
                }
            }
            RegexFormula::Concat(l, r) => {
                let mut out = Vec::new();
                let mut seen = BTreeSet::new();
                for m in i..=j {
                    let left = self.matches(l, i, m);
                    if left.is_empty() {
                        continue;
                    }
                    let right = self.matches(r, m, j);
                    for cl in left.iter() {
                        for cr in right.iter() {
                            let mut merged = cl.clone();
                            merged.extend(cr.iter().map(|(k, v)| (k.clone(), *v)));
                            if seen.insert(merged.clone()) {
                                out.push(merged);
                            }
                        }
                    }
                }
                out
            }
            RegexFormula::Union(l, r) => {
                let mut out: Vec<Captures> = self.matches(l, i, j).as_ref().clone();
                let mut seen: BTreeSet<Captures> = out.iter().cloned().collect();
                for c in self.matches(r, i, j).iter() {
                    if seen.insert(c.clone()) {
                        out.push(c.clone());
                    }
                }
                out
            }
            RegexFormula::Star(inner) => {
                // Variable-free body: pure reachability DP over positions.
                if self.star_reaches(inner, i, j) {
                    vec![Captures::new()]
                } else {
                    Vec::new()
                }
            }
            RegexFormula::Capture(x, inner) => self
                .matches(inner, i, j)
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    c.insert(x.clone(), Span::new(i, j));
                    c
                })
                .collect(),
        };
        let rc = Rc::new(result);
        self.memo.insert(key, rc.clone());
        rc
    }

    fn star_reaches(&mut self, body: &RegexFormula, i: usize, j: usize) -> bool {
        // BFS over positions i..=j using body matches as edges.
        if i == j {
            return true;
        }
        let mut reach = vec![false; j - i + 1];
        reach[0] = true;
        for from in i..j {
            if !reach[from - i] {
                continue;
            }
            for to in from + 1..=j {
                if !reach[to - i] && !self.matches(body, from, to).is_empty() {
                    reach[to - i] = true;
                }
            }
        }
        reach[j - i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_patterns_match_whole_document() {
        let g = RegexFormula::pattern("(ab)*");
        assert!(g.accepts(b"abab"));
        assert!(!g.accepts(b"aba"));
        assert!(g.accepts(b""));
    }

    #[test]
    fn capture_of_whole_document() {
        let g = RegexFormula::capture("x", RegexFormula::any_star());
        let r = g.evaluate(b"ab");
        assert_eq!(r.schema, vec!["x"]);
        assert_eq!(r.len(), 1);
        assert!(r.tuples.contains(&vec![Span::new(0, 2)]));
    }

    #[test]
    fn extractor_finds_all_occurrences() {
        // γ(x) := Σ*·x{ab}·Σ* on "abab": occurrences at [0,2⟩ and [2,4⟩.
        let g = RegexFormula::extractor(RegexFormula::capture("x", RegexFormula::pattern("ab")));
        let r = g.evaluate(b"abab");
        assert_eq!(r.len(), 2);
        assert!(r.tuples.contains(&vec![Span::new(0, 2)]));
        assert!(r.tuples.contains(&vec![Span::new(2, 4)]));
    }

    #[test]
    fn intro_misspelling_example() {
        // The paper's intro: γ(x) := Σ*·x{acheive ∨ wether}·Σ*.
        let g = RegexFormula::extractor(RegexFormula::capture(
            "x",
            RegexFormula::alt([
                RegexFormula::pattern("acheive"),
                RegexFormula::pattern("wether"),
            ]),
        ));
        let doc = b"i acheive it wether or not";
        let r = g.evaluate(doc);
        assert_eq!(r.len(), 2);
        let contents: Vec<Vec<u8>> = r
            .tuples
            .iter()
            .map(|t| t[0].content(doc).to_vec())
            .collect();
        assert!(contents.contains(&b"acheive".to_vec()));
        assert!(contents.contains(&b"wether".to_vec()));
    }

    #[test]
    fn two_variable_split() {
        // x{Σ*}·y{Σ*}: all 2-splits of the document.
        let g = RegexFormula::cat([
            RegexFormula::capture("x", RegexFormula::any_star()),
            RegexFormula::capture("y", RegexFormula::any_star()),
        ]);
        let r = g.evaluate(b"abc");
        assert_eq!(r.len(), 4); // split positions 0..=3
        assert_eq!(r.schema, vec!["x", "y"]);
    }

    #[test]
    fn functionality_violations_detected() {
        // Same variable twice in a concatenation.
        let bad = RegexFormula::cat([
            RegexFormula::capture("x", RegexFormula::pattern("a")),
            RegexFormula::capture("x", RegexFormula::pattern("b")),
        ]);
        assert!(bad.check_functional().is_err());
        // Union branches binding different variables.
        let bad = RegexFormula::alt([
            RegexFormula::capture("x", RegexFormula::pattern("a")),
            RegexFormula::pattern("b"),
        ]);
        assert!(bad.check_functional().is_err());
        // Star body with a variable.
        let bad = Rc::new(RegexFormula::Star(RegexFormula::capture(
            "x",
            RegexFormula::pattern("a"),
        )));
        assert!(bad.check_functional().is_err());
        // Nested same-name capture.
        let bad =
            RegexFormula::capture("x", RegexFormula::capture("x", RegexFormula::pattern("a")));
        assert!(bad.check_functional().is_err());
    }

    #[test]
    fn union_branches_with_same_vars_are_fine() {
        let g = RegexFormula::alt([
            RegexFormula::capture("x", RegexFormula::pattern("a")),
            RegexFormula::capture("x", RegexFormula::pattern("bb")),
        ]);
        assert!(g.check_functional().is_ok());
        let r = g.evaluate(b"bb");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_formula_and_empty_doc() {
        assert!(!RegexFormula::Empty.accepts(b""));
        assert!(RegexFormula::Epsilon.accepts(b""));
        assert!(!RegexFormula::Epsilon.accepts(b"a"));
        let g = RegexFormula::capture("x", Rc::new(RegexFormula::Epsilon));
        let r = g.evaluate(b"");
        assert_eq!(r.len(), 1);
        assert!(r.tuples.contains(&vec![Span::new(0, 0)]));
    }

    #[test]
    fn memoization_shares_results() {
        // (ab)* under extractor on a longer doc — exercises the memo.
        let g = RegexFormula::extractor(RegexFormula::capture("x", RegexFormula::pattern("(ab)+")));
        let doc = b"ababab";
        let r = g.evaluate(doc);
        // occurrences of (ab)+ as factors: [0,2),[0,4),[0,6),[2,4),[2,6),[4,6)
        assert_eq!(r.len(), 6);
    }
}

impl RegexFormula {
    /// Converts a **variable-free** formula into a plain `fc_reglang`
    /// regex (`AnySym` becomes the union over `alphabet`). Returns `None`
    /// if the formula binds variables — captures have no regex counterpart.
    ///
    /// This is the bridge that lets Boolean spanner queries reuse the DFA
    /// pipeline (compile once, run in O(|doc|)).
    pub fn to_plain_regex(&self, alphabet: &[u8]) -> Option<Rc<Regex>> {
        match self {
            RegexFormula::Empty => Some(Regex::empty()),
            RegexFormula::Epsilon => Some(Regex::epsilon()),
            RegexFormula::Sym(c) => Some(Regex::sym(*c)),
            RegexFormula::AnySym => Some(Regex::union_all(alphabet.iter().map(|&a| Regex::sym(a)))),
            RegexFormula::Concat(l, r) => Some(Regex::concat(
                l.to_plain_regex(alphabet)?,
                r.to_plain_regex(alphabet)?,
            )),
            RegexFormula::Union(l, r) => Some(Regex::union(
                l.to_plain_regex(alphabet)?,
                r.to_plain_regex(alphabet)?,
            )),
            RegexFormula::Star(i) => Some(Regex::star(i.to_plain_regex(alphabet)?)),
            RegexFormula::Capture(..) => None,
        }
    }
}

#[cfg(test)]
mod regex_bridge_tests {
    use super::*;
    use fc_reglang::Dfa;
    use fc_words::Alphabet;

    #[test]
    fn variable_free_formulas_compile_to_dfas() {
        let sigma = Alphabet::ab();
        let formulas = [
            RegexFormula::pattern("(a|b)*abb"),
            RegexFormula::extractor(RegexFormula::pattern("aa")),
            RegexFormula::any_star(),
        ];
        for f in &formulas {
            let re = f.to_plain_regex(b"ab").expect("variable-free");
            let dfa = Dfa::from_regex(&re, b"ab");
            for w in sigma.words_up_to(6) {
                assert_eq!(f.accepts(w.bytes()), dfa.accepts(w.bytes()), "w={w}");
            }
        }
    }

    #[test]
    fn captures_have_no_plain_regex() {
        let f = RegexFormula::capture("x", RegexFormula::pattern("a"));
        assert!(f.to_plain_regex(b"ab").is_none());
    }
}
