//! The spanner relational algebra: ∪, π, ⋈, ∖, ζ= and generic ζ^R.
//!
//! These are the operators of Fagin et al.'s core spanners (∪, π, ⋈, ζ=)
//! plus difference ∖, which yields the paper's **generalized core
//! spanners**. `ζ^R` is the generic relation-selection operator of the
//! selectability definition (§1): a relation `R` is *selectable* iff
//! adding `ζ^R` does not increase expressive power — Theorem 5.5 exhibits
//! relations where it provably does.

use crate::span::{Span, SpanRelation};

/// Union of two relations over the same schema.
///
/// # Panics
/// Panics on schema mismatch (union is only defined schema-wise).
pub fn union(a: &SpanRelation, b: &SpanRelation) -> SpanRelation {
    assert_eq!(a.schema, b.schema, "∪ requires equal schemas");
    let mut out = a.clone();
    out.tuples.extend(b.tuples.iter().cloned());
    out
}

/// Projection `π_vars` (keeps the listed variables).
///
/// # Panics
/// Panics if some variable is not in the schema.
pub fn project(rel: &SpanRelation, vars: &[&str]) -> SpanRelation {
    let mut keep: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
    keep.sort();
    keep.dedup();
    let indices: Vec<usize> = keep
        .iter()
        .map(|v| {
            rel.index_of(v)
                .unwrap_or_else(|| panic!("π: variable {v} not in schema {:?}", rel.schema))
        })
        .collect();
    let mut out = SpanRelation::empty(keep);
    for t in &rel.tuples {
        out.tuples.insert(indices.iter().map(|&i| t[i]).collect());
    }
    out
}

/// Natural join `a ⋈ b`: tuples agreeing on the common variables.
pub fn join(a: &SpanRelation, b: &SpanRelation) -> SpanRelation {
    let mut schema: Vec<String> = a.schema.iter().chain(b.schema.iter()).cloned().collect();
    schema.sort();
    schema.dedup();
    let common: Vec<(usize, usize)> = a
        .schema
        .iter()
        .enumerate()
        .filter_map(|(ia, v)| b.index_of(v).map(|ib| (ia, ib)))
        .collect();
    let mut out = SpanRelation::empty(schema.iter().cloned());
    // Output tuple construction: for each schema var, source index in a or b.
    enum Src {
        FromA(usize),
        FromB(usize),
    }
    let sources: Vec<Src> = schema
        .iter()
        .map(|v| match a.index_of(v) {
            Some(i) => Src::FromA(i),
            None => Src::FromB(b.index_of(v).unwrap()),
        })
        .collect();
    for ta in &a.tuples {
        for tb in &b.tuples {
            if common.iter().all(|&(ia, ib)| ta[ia] == tb[ib]) {
                let tuple: Vec<Span> = sources
                    .iter()
                    .map(|s| match s {
                        Src::FromA(i) => ta[*i],
                        Src::FromB(i) => tb[*i],
                    })
                    .collect();
                out.tuples.insert(tuple);
            }
        }
    }
    out
}

/// Difference `a ∖ b` (same schema) — the operator that upgrades core
/// spanners to generalized core spanners.
///
/// # Panics
/// Panics on schema mismatch.
pub fn difference(a: &SpanRelation, b: &SpanRelation) -> SpanRelation {
    assert_eq!(a.schema, b.schema, "∖ requires equal schemas");
    let mut out = SpanRelation::empty(a.schema.iter().cloned());
    for t in &a.tuples {
        if !b.tuples.contains(t) {
            out.tuples.insert(t.clone());
        }
    }
    out
}

/// String-equality selection `ζ=_{x,y}`: keeps tuples whose spans for `x`
/// and `y` have the **same content** in the document (possibly at
/// different positions) — the text-specific operator of core spanners.
pub fn eq_select(rel: &SpanRelation, doc: &[u8], x: &str, y: &str) -> SpanRelation {
    let ix = rel
        .index_of(x)
        .unwrap_or_else(|| panic!("ζ=: {x} not in schema"));
    let iy = rel
        .index_of(y)
        .unwrap_or_else(|| panic!("ζ=: {y} not in schema"));
    let mut out = SpanRelation::empty(rel.schema.iter().cloned());
    for t in &rel.tuples {
        if t[ix].content(doc) == t[iy].content(doc) {
            out.tuples.insert(t.clone());
        }
    }
    out
}

/// Generic relation selection `ζ^R_{x₁,…,x_k}`: keeps tuples whose span
/// *contents* (in order) satisfy the relation predicate. This is the
/// operator whose admissibility the paper studies.
pub fn rel_select(
    rel: &SpanRelation,
    doc: &[u8],
    vars: &[&str],
    predicate: impl Fn(&[&[u8]]) -> bool,
) -> SpanRelation {
    let indices: Vec<usize> = vars
        .iter()
        .map(|v| {
            rel.index_of(v)
                .unwrap_or_else(|| panic!("ζ^R: {v} not in schema"))
        })
        .collect();
    let mut out = SpanRelation::empty(rel.schema.iter().cloned());
    for t in &rel.tuples {
        let contents: Vec<&[u8]> = indices.iter().map(|&i| t[i].content(doc)).collect();
        if predicate(&contents) {
            out.tuples.insert(t.clone());
        }
    }
    out
}

/// The universal spanner `Υ_vars`: **all** assignments of spans of `doc`
/// to the given variables (Fagin et al.'s Υ). Useful for building
/// selections over unconstrained variables.
pub fn universal(doc: &[u8], vars: &[&str]) -> SpanRelation {
    let mut spans = Vec::new();
    for i in 0..=doc.len() {
        for j in i..=doc.len() {
            spans.push(Span::new(i, j));
        }
    }
    let mut out = SpanRelation::empty(vars.iter().map(|v| v.to_string()));
    let k = out.schema.len();
    let mut tuple = vec![Span::new(0, 0); k];
    fn rec(spans: &[Span], tuple: &mut Vec<Span>, depth: usize, out: &mut SpanRelation) {
        if depth == tuple.len() {
            out.tuples.insert(tuple.clone());
            return;
        }
        for &s in spans {
            tuple[depth] = s;
            rec(spans, tuple, depth + 1, out);
        }
    }
    rec(&spans, &mut tuple, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[&str], tuples: &[&[(usize, usize)]]) -> SpanRelation {
        let mut r = SpanRelation::empty(schema.iter().map(|s| s.to_string()));
        for t in tuples {
            let named: Vec<(&str, Span)> = schema
                .iter()
                .zip(t.iter())
                .map(|(v, &(i, j))| (*v, Span::new(i, j)))
                .collect();
            r.insert_named(&named);
        }
        r
    }

    #[test]
    fn union_and_difference() {
        let a = rel(&["x"], &[&[(0, 1)], &[(1, 2)]]);
        let b = rel(&["x"], &[&[(1, 2)], &[(2, 3)]]);
        assert_eq!(union(&a, &b).len(), 3);
        let d = difference(&a, &b);
        assert_eq!(d.len(), 1);
        assert!(d.tuples.contains(&vec![Span::new(0, 1)]));
    }

    #[test]
    #[should_panic(expected = "equal schemas")]
    fn union_schema_mismatch_panics() {
        let a = rel(&["x"], &[]);
        let b = rel(&["y"], &[]);
        let _ = union(&a, &b);
    }

    #[test]
    fn projection() {
        let a = rel(&["x", "y"], &[&[(0, 1), (1, 2)], &[(0, 1), (2, 3)]]);
        let p = project(&a, &["x"]);
        assert_eq!(p.schema, vec!["x"]);
        assert_eq!(p.len(), 1); // duplicates collapse
    }

    #[test]
    fn natural_join_on_common_variable() {
        let a = rel(&["x", "y"], &[&[(0, 1), (1, 2)], &[(0, 2), (2, 3)]]);
        let b = rel(&["y", "z"], &[&[(1, 2), (3, 4)], &[(9, 9), (0, 0)]]);
        let j = join(&a, &b);
        assert_eq!(j.schema, vec!["x", "y", "z"]);
        assert_eq!(j.len(), 1);
        let t = j.tuples.iter().next().unwrap();
        assert_eq!(t, &vec![Span::new(0, 1), Span::new(1, 2), Span::new(3, 4)]);
    }

    #[test]
    fn join_with_disjoint_schemas_is_product() {
        let a = rel(&["x"], &[&[(0, 1)], &[(1, 2)]]);
        let b = rel(&["y"], &[&[(2, 3)], &[(3, 4)], &[(4, 5)]]);
        assert_eq!(join(&a, &b).len(), 6);
    }

    #[test]
    fn equality_selection_compares_contents() {
        let doc = b"abab";
        // x = [0,2) "ab", y = [2,4) "ab" → kept; y = [1,3) "ba" → dropped.
        let a = rel(&["x", "y"], &[&[(0, 2), (2, 4)], &[(0, 2), (1, 3)]]);
        let z = eq_select(&a, doc, "x", "y");
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn generic_selection_with_length_predicate() {
        let doc = b"abab";
        let a = universal(doc, &["x", "y"]);
        // ζ^len: |x| = |y| — the relation the paper proves unattainable.
        let z = rel_select(&a, doc, &["x", "y"], |c| c[0].len() == c[1].len());
        assert!(z.len() < a.len());
        assert!(z.tuples.iter().all(|t| t[0].len() == t[1].len()));
    }

    #[test]
    fn universal_spanner_counts() {
        // |doc| = 2 → spans = 6; Υ_{x,y} = 36 tuples.
        let u = universal(b"ab", &["x", "y"]);
        assert_eq!(u.len(), 36);
        let u1 = universal(b"ab", &["x"]);
        assert_eq!(u1.len(), 6);
    }
}
