//! Algebraic rewriting of spanner expressions.
//!
//! The classical relational-algebra rewrites apply verbatim to the spanner
//! algebra and matter in practice: selections and projections commute with
//! union and (schema permitting) slide below joins, shrinking the
//! intermediate span relations drastically (ζ= after a ⋈ of universal
//! spanners is quadratically larger than before it). This is also the
//! computational face of Fagin et al.'s *core-simplification lemma*: core
//! spanner expressions normalize towards ⟨regex formulas → selections →
//! projections → unions⟩.
//!
//! Every rule is semantics-preserving; the test suite re-evaluates
//! original and optimized expressions on documents and asserts equal
//! outputs.

use crate::spanner::Spanner;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Applies the rewrite rules bottom-up until a fixpoint (bounded by
/// `MAX_PASSES` for safety).
pub fn optimize(s: &Rc<Spanner>) -> Rc<Spanner> {
    const MAX_PASSES: usize = 8;
    let mut cur = s.clone();
    for _ in 0..MAX_PASSES {
        let next = rewrite(&cur);
        if structurally_equal(&next, &cur) {
            return next;
        }
        cur = next;
    }
    cur
}

fn rewrite(s: &Rc<Spanner>) -> Rc<Spanner> {
    // Bottom-up: rewrite children first.
    let node: Rc<Spanner> = match &**s {
        Spanner::Regex(_) => s.clone(),
        Spanner::Union(a, b) => Rc::new(Spanner::Union(rewrite(a), rewrite(b))),
        Spanner::Project(v, a) => Rc::new(Spanner::Project(v.clone(), rewrite(a))),
        Spanner::Join(a, b) => Rc::new(Spanner::Join(rewrite(a), rewrite(b))),
        Spanner::Difference(a, b) => Rc::new(Spanner::Difference(rewrite(a), rewrite(b))),
        Spanner::EqSelect(x, y, a) => Rc::new(Spanner::EqSelect(x.clone(), y.clone(), rewrite(a))),
        Spanner::RelSelect(v, n, p, a) => Rc::new(Spanner::RelSelect(
            v.clone(),
            n.clone(),
            p.clone(),
            rewrite(a),
        )),
    };
    apply_rules(&node)
}

fn apply_rules(s: &Rc<Spanner>) -> Rc<Spanner> {
    match &**s {
        // ζ=_{x,x} is a no-op.
        Spanner::EqSelect(x, y, inner) if x == y => inner.clone(),

        // Selection commutes with union.
        Spanner::EqSelect(x, y, inner) => {
            if let Spanner::Union(a, b) = &**inner {
                return Rc::new(Spanner::Union(
                    apply_rules(&Rc::new(Spanner::EqSelect(x.clone(), y.clone(), a.clone()))),
                    apply_rules(&Rc::new(Spanner::EqSelect(x.clone(), y.clone(), b.clone()))),
                ));
            }
            // Selection pushdown below a join when one side covers {x, y}.
            if let Spanner::Join(a, b) = &**inner {
                let sa: BTreeSet<String> = a.schema().into_iter().collect();
                let sb: BTreeSet<String> = b.schema().into_iter().collect();
                if sa.contains(x) && sa.contains(y) {
                    return Rc::new(Spanner::Join(
                        apply_rules(&Rc::new(Spanner::EqSelect(x.clone(), y.clone(), a.clone()))),
                        b.clone(),
                    ));
                }
                if sb.contains(x) && sb.contains(y) {
                    return Rc::new(Spanner::Join(
                        a.clone(),
                        apply_rules(&Rc::new(Spanner::EqSelect(x.clone(), y.clone(), b.clone()))),
                    ));
                }
            }
            s.clone()
        }

        Spanner::Project(vars, inner) => {
            let inner_schema: BTreeSet<String> = inner.schema().into_iter().collect();
            let kept: BTreeSet<String> = vars.iter().cloned().collect();
            // Identity projection.
            if kept == inner_schema {
                return inner.clone();
            }
            // Collapse π∘π.
            if let Spanner::Project(_, deeper) = &**inner {
                return apply_rules(&Rc::new(Spanner::Project(vars.clone(), deeper.clone())));
            }
            // Projection commutes with union.
            if let Spanner::Union(a, b) = &**inner {
                return Rc::new(Spanner::Union(
                    apply_rules(&Rc::new(Spanner::Project(vars.clone(), a.clone()))),
                    apply_rules(&Rc::new(Spanner::Project(vars.clone(), b.clone()))),
                ));
            }
            s.clone()
        }

        // Idempotent union.
        Spanner::Union(a, b) if structurally_equal(a, b) => a.clone(),

        // a ∖ a = ∅ is *not* rewritten (the empty relation needs a schema
        // carrier we don't synthesize) — documented limitation.
        _ => s.clone(),
    }
}

/// Structural equality of expressions. `RelSelect` predicates are compared
/// by pointer identity (same `Rc`) plus name, which is sound (never equates
/// different predicates) though incomplete.
pub fn structurally_equal(a: &Rc<Spanner>, b: &Rc<Spanner>) -> bool {
    if Rc::ptr_eq(a, b) {
        return true;
    }
    match (&**a, &**b) {
        (Spanner::Regex(x), Spanner::Regex(y)) => x == y,
        (Spanner::Union(a1, a2), Spanner::Union(b1, b2))
        | (Spanner::Join(a1, a2), Spanner::Join(b1, b2))
        | (Spanner::Difference(a1, a2), Spanner::Difference(b1, b2)) => {
            structurally_equal(a1, b1) && structurally_equal(a2, b2)
        }
        (Spanner::Project(v1, i1), Spanner::Project(v2, i2)) => {
            v1 == v2 && structurally_equal(i1, i2)
        }
        (Spanner::EqSelect(x1, y1, i1), Spanner::EqSelect(x2, y2, i2)) => {
            x1 == x2 && y1 == y2 && structurally_equal(i1, i2)
        }
        (Spanner::RelSelect(v1, n1, p1, i1), Spanner::RelSelect(v2, n2, p2, i2)) => {
            v1 == v2 && n1 == n2 && Rc::ptr_eq(p1, p2) && structurally_equal(i1, i2)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex_formula::RegexFormula;

    fn two_split() -> Rc<Spanner> {
        Spanner::regex(RegexFormula::cat([
            RegexFormula::capture("x", RegexFormula::any_star()),
            RegexFormula::capture("y", RegexFormula::any_star()),
        ]))
    }

    fn assert_equivalent(original: &Rc<Spanner>, docs: &[&str]) {
        let optimized = optimize(original);
        for doc in docs {
            assert_eq!(
                original.evaluate(doc.as_bytes()),
                optimized.evaluate(doc.as_bytes()),
                "doc={doc} original={original:?} optimized={optimized:?}"
            );
        }
    }

    #[test]
    fn trivial_selection_is_dropped() {
        let s = Spanner::eq_select("x", "x", two_split());
        let o = optimize(&s);
        assert!(matches!(&*o, Spanner::Regex(_)));
        assert_equivalent(&s, &["", "ab", "abab"]);
    }

    #[test]
    fn selection_pushes_through_union() {
        let u = Rc::new(Spanner::Union(two_split(), two_split()));
        let s = Spanner::eq_select("x", "y", u);
        let o = optimize(&s);
        // After idempotent-union collapse the selection sits on a leaf.
        assert!(matches!(&*o, Spanner::EqSelect(..)));
        assert_equivalent(&s, &["", "aa", "abab"]);
    }

    #[test]
    fn selection_pushes_below_join() {
        // x,y live in the left factor; z in the right.
        let left = two_split();
        let right = Spanner::regex(RegexFormula::capture("z", RegexFormula::any_star()));
        let joined = Rc::new(Spanner::Join(left, right));
        let s = Spanner::eq_select("x", "y", joined);
        let o = optimize(&s);
        match &*o {
            Spanner::Join(l, _) => assert!(matches!(&**l, Spanner::EqSelect(..))),
            other => panic!("expected pushed-down join, got {other:?}"),
        }
        assert_equivalent(&s, &["", "ab", "aab"]);
    }

    #[test]
    fn projection_chains_collapse() {
        let s = Rc::new(Spanner::Project(
            vec!["x".into()],
            Rc::new(Spanner::Project(vec!["x".into(), "y".into()], two_split())),
        ));
        let o = optimize(&s);
        match &*o {
            Spanner::Project(v, inner) => {
                assert_eq!(v, &vec!["x".to_string()]);
                assert!(matches!(&**inner, Spanner::Regex(_)));
            }
            other => panic!("expected single projection, got {other:?}"),
        }
        assert_equivalent(&s, &["", "ab", "aba"]);
    }

    #[test]
    fn identity_projection_is_dropped() {
        let s = Rc::new(Spanner::Project(vec!["x".into(), "y".into()], two_split()));
        let o = optimize(&s);
        assert!(matches!(&*o, Spanner::Regex(_)));
        assert_equivalent(&s, &["ab"]);
    }

    #[test]
    fn idempotent_union_collapses() {
        let s = Rc::new(Spanner::Union(two_split(), two_split()));
        let o = optimize(&s);
        assert!(matches!(&*o, Spanner::Regex(_)));
        assert_equivalent(&s, &["", "ab"]);
    }

    #[test]
    fn optimizer_preserves_generalized_core_pipelines() {
        // ζ=(π(…)) over a difference — nothing unsound happens.
        let base = two_split();
        let eq = Spanner::eq_select("x", "y", base.clone());
        let diff = Rc::new(Spanner::Difference(base.clone(), eq.clone()));
        assert_equivalent(&diff, &["", "aa", "abab", "aabb"]);
        let proj = Rc::new(Spanner::Project(vec!["x".into()], diff));
        assert_equivalent(&proj, &["", "aa", "abab"]);
    }

    #[test]
    fn rel_select_identity_is_pointer_based() {
        let p = Spanner::rel_select(
            &["x", "y"],
            "len",
            |c| c[0].len() == c[1].len(),
            two_split(),
        );
        // Same Rc: equal; rebuilt predicate: not equated (sound).
        assert!(structurally_equal(&p, &p.clone()));
        let q = Spanner::rel_select(
            &["x", "y"],
            "len",
            |c| c[0].len() == c[1].len(),
            two_split(),
        );
        assert!(!structurally_equal(&p, &q));
        assert_equivalent(&p, &["", "ab", "aba"]);
    }
}
