//! # fc-spanners — document spanners
//!
//! The paper's target class is the **generalized core spanners**: regex
//! formulas (regular expressions with capture variables) combined with
//! union, projection, natural join, difference and string-equality
//! selection (Fagin–Kimelfeld–Reiss–Vansummeren). This crate implements
//! the whole stack, exactly:
//!
//! - [`span`]: spans `[i, j⟩`, span tuples, span relations with schemas;
//! - [`regex_formula`]: regex formulas γ with capture variables,
//!   functionality checking, and exact evaluation `⟦γ⟧(d)` via a memoized
//!   span matcher;
//! - [`algebra`]: the relational operators ∪, π, ⋈, ∖, ζ= and generic ζ^R;
//! - [`spanner`]: expression trees for core / generalized core spanners
//!   with an evaluator and class predicates;
//! - [`correspond`]: instance-level checks connecting spanners to FC[REG]
//!   (the Freydenberger–Peterfreund correspondence the paper relies on).

pub mod algebra;
pub mod correspond;
pub mod optimize;
pub mod regex_formula;
pub mod span;
pub mod spanner;
pub mod vset_automaton;

pub use regex_formula::RegexFormula;
pub use span::{Span, SpanRelation};
pub use spanner::Spanner;
