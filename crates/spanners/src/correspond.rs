//! Instance-level checks of the spanner ⇆ FC[REG] correspondence.
//!
//! Freydenberger–Peterfreund: a word relation is definable in FC[REG] iff
//! it is selectable by generalized core spanners, and Boolean generalized
//! core spanners define the same languages as FC[REG] sentences. This
//! module provides harness utilities that *demonstrate* the
//! correspondence on finite windows: pairs (spanner, formula) asserted to
//! define the same language/relation, compared word by word.
//!
//! These checks are what lets the paper work exclusively on the logic side
//! (§5): every inexpressibility result for FC[REG] transfers to
//! generalized core spanners.

use crate::spanner::Spanner;
use fc_logic::{eval, FactorStructure, Formula, Plan};
use fc_words::{Alphabet, Word};

/// Compares the Boolean behaviour of a spanner and an FC[REG] sentence on
/// all words of Σ^{≤max_len}; returns the first disagreement. The
/// sentence is compiled once for the whole window.
pub fn first_boolean_disagreement(
    spanner: &Spanner,
    sentence: &Formula,
    sigma: &Alphabet,
    max_len: usize,
) -> Option<Word> {
    first_boolean_disagreement_plan(spanner, &Plan::compile(sentence), sigma, max_len)
}

/// [`first_boolean_disagreement`] over a precompiled (or cache-shared)
/// plan — the form a long-lived engine uses, so one plan serves any number
/// of windows and documents.
pub fn first_boolean_disagreement_plan(
    spanner: &Spanner,
    plan: &Plan,
    sigma: &Alphabet,
    max_len: usize,
) -> Option<Word> {
    sigma.words_up_to(max_len).find(|w| {
        let s = FactorStructure::new(w.clone(), sigma);
        let formula_accepts = plan.eval(&s, &eval::Assignment::new());
        spanner.accepts(w.bytes()) != formula_accepts
    })
}

/// The spanner's *content relation* on one document: the content tuples of
/// its output relation projected to `vars`, sorted and deduplicated. This
/// is the relation the Freydenberger–Peterfreund correspondence compares
/// against ⟦φ⟧(w), and the payload `fc serve`'s extraction endpoint
/// returns for stored documents.
///
/// # Panics
/// Panics when a requested variable is missing from the spanner's schema.
pub fn spanner_content_relation(spanner: &Spanner, vars: &[&str], doc: &Word) -> Vec<Vec<Word>> {
    let rel = spanner.evaluate(doc.bytes());
    let indices: Vec<usize> = vars
        .iter()
        .map(|v| {
            rel.index_of(v)
                .unwrap_or_else(|| panic!("{v} not in spanner schema"))
        })
        .collect();
    let mut tuples: Vec<Vec<Word>> = rel
        .tuples
        .iter()
        .map(|t| {
            indices
                .iter()
                .map(|&i| Word::from(t[i].content(doc.bytes())))
                .collect()
        })
        .collect();
    tuples.sort();
    tuples.dedup();
    tuples
}

/// Compares a spanner's *content relation* (the set of content tuples of
/// its output, ordered by the schema) against the relation ⟦φ⟧(w) of a
/// formula with matching free variables, on one document. Returns the
/// first mismatching tuple description.
pub fn first_relation_disagreement(
    spanner: &Spanner,
    formula: &Formula,
    vars: &[&str],
    doc: &Word,
    sigma: &Alphabet,
) -> Option<String> {
    first_relation_disagreement_plan(spanner, &Plan::compile(formula), vars, doc, sigma)
}

/// [`first_relation_disagreement`] over a precompiled plan: the
/// FC[REG]-side relation comes from [`fc_logic::language::relation_on_plan`]
/// on an already-built structure, so a stored (interned) document can be
/// checked without rebuilding anything.
pub fn first_relation_disagreement_plan(
    spanner: &Spanner,
    plan: &Plan,
    vars: &[&str],
    doc: &Word,
    sigma: &Alphabet,
) -> Option<String> {
    let structure = FactorStructure::new(doc.clone(), sigma);
    // Already sorted and deduplicated by `relation_on_plan`.
    let from_formula = fc_logic::language::relation_on_plan(plan, vars, &structure);
    let from_spanner = spanner_content_relation(spanner, vars, doc);

    for t in &from_spanner {
        if !from_formula.contains(t) {
            return Some(format!("spanner-only tuple {t:?}"));
        }
    }
    for t in &from_formula {
        if !from_spanner.contains(t) {
            return Some(format!("formula-only tuple {t:?}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex_formula::RegexFormula;
    use fc_logic::library;
    use std::rc::Rc;

    #[test]
    fn ww_language_agrees_between_spanner_and_formula() {
        // Spanner: ζ=_{x,y}(x{Σ*}·y{Σ*}); formula: φ_ww (Example 2.3).
        let spanner = Spanner::eq_select(
            "x",
            "y",
            Spanner::regex(RegexFormula::cat([
                RegexFormula::capture("x", RegexFormula::any_star()),
                RegexFormula::capture("y", RegexFormula::any_star()),
            ])),
        );
        let sentence = library::phi_square();
        let sigma = Alphabet::ab();
        assert_eq!(
            first_boolean_disagreement(&spanner, &sentence, &sigma, 6),
            None
        );
    }

    #[test]
    fn copy_relation_agrees_on_contents() {
        // Spanner: ζ=_{y,y'}(x{y{Σ*}·y'{Σ*}}) — x = y·y' with y = y';
        // projected to (x, y) it matches R_copy(x, y) := (x ≐ y·y),
        // on content level, for spans-of-the-whole-document semantics…
        // Demonstrated on a document where every factor arises as a span.
        let inner = RegexFormula::capture(
            "x",
            RegexFormula::cat([
                RegexFormula::capture("y", RegexFormula::any_star()),
                RegexFormula::capture("y2", RegexFormula::any_star()),
            ]),
        );
        // Wrap in Σ*·…·Σ* so x ranges over all factors.
        let spanner = Rc::new(Spanner::Project(
            vec!["x".into(), "y".into()],
            Spanner::eq_select("y", "y2", Spanner::regex(RegexFormula::extractor(inner))),
        ));
        let formula = library::r_copy("x", "y");
        let doc = Word::from("aabaab");
        let sigma = Alphabet::ab();
        assert_eq!(
            first_relation_disagreement(&spanner, &formula, &["x", "y"], &doc, &sigma),
            None
        );
    }

    #[test]
    fn disagreements_are_reported() {
        // A spanner accepting everything vs φ_ww: disagree on "a".
        let spanner = Spanner::regex(RegexFormula::any_star());
        let sentence = library::phi_square();
        let sigma = Alphabet::ab();
        let w = first_boolean_disagreement(&spanner, &sentence, &sigma, 3);
        assert_eq!(w.unwrap().as_str(), "a");
    }
}
