//! Property tests for the spanner stack: algebra laws, evaluation
//! consistency, and regex-formula semantics on randomized documents.

use fc_spanners::algebra::{difference, eq_select, join, project, union, universal};
use fc_spanners::regex_formula::RegexFormula;
use fc_spanners::span::{Span, SpanRelation};
use fc_spanners::spanner::Spanner;
use fc_words::Word;
use proptest::prelude::*;
use std::rc::Rc;

fn doc(max_len: usize) -> impl Strategy<Value = Word> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b']), 0..=max_len)
        .prop_map(Word::from_bytes)
}

/// A random span relation over schema {x, y} with spans valid for `len`.
fn relation(len: usize) -> impl Strategy<Value = SpanRelation> {
    let span = (0..=len)
        .prop_flat_map(move |i| (Just(i), i..=len))
        .prop_map(|(i, j)| Span::new(i, j));
    prop::collection::btree_set((span.clone(), span), 0..8).prop_map(|tuples| {
        let mut rel = SpanRelation::empty(["x".to_string(), "y".to_string()]);
        for (sx, sy) in tuples {
            rel.tuples.insert(vec![sx, sy]);
        }
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_laws(a in relation(5), b in relation(5)) {
        prop_assert_eq!(union(&a, &b), union(&b, &a));
        prop_assert_eq!(union(&a, &a), a.clone());
        prop_assert!(union(&a, &b).len() <= a.len() + b.len());
    }

    #[test]
    fn difference_laws(a in relation(5), b in relation(5)) {
        let d = difference(&a, &b);
        prop_assert!(d.len() <= a.len());
        // a = (a ∖ b) ∪ (a ∩ b): reconstruct via difference twice.
        let a_inter_b = difference(&a, &d);
        prop_assert_eq!(union(&d, &a_inter_b), a.clone());
        // Difference with self is empty.
        prop_assert!(difference(&a, &a).is_empty());
    }

    #[test]
    fn projection_laws(a in relation(5)) {
        let px = project(&a, &["x"]);
        prop_assert!(px.len() <= a.len());
        // Projection is idempotent.
        prop_assert_eq!(project(&px, &["x"]), px.clone());
        // Projecting onto the full schema is the identity.
        prop_assert_eq!(project(&a, &["x", "y"]), a.clone());
    }

    #[test]
    fn join_with_universal_is_identity_like(a in relation(4), w in doc(4)) {
        prop_assume!(a.tuples.iter().flatten().all(|s| s.end <= w.len()));
        // Joining with Υ_{x} (all spans for x) keeps exactly the tuples
        // whose x-span appears — i.e. everything.
        let uni = universal(w.bytes(), &["x"]);
        let j = join(&a, &uni);
        prop_assert_eq!(j, a.clone());
    }

    #[test]
    fn join_is_commutative_up_to_schema(a in relation(4), b in relation(4)) {
        prop_assert_eq!(join(&a, &b), join(&b, &a));
    }

    #[test]
    fn eq_select_is_a_filter(a in relation(4), w in doc(6)) {
        prop_assume!(a.tuples.iter().flatten().all(|s| s.end <= w.len()));
        let z = eq_select(&a, w.bytes(), "x", "y");
        prop_assert!(z.len() <= a.len());
        for t in &z.tuples {
            prop_assert!(a.tuples.contains(t));
            prop_assert_eq!(t[0].content(w.bytes()), t[1].content(w.bytes()));
        }
        // Idempotent.
        prop_assert_eq!(eq_select(&z, w.bytes(), "x", "y"), z.clone());
    }

    #[test]
    fn universal_spanner_has_expected_cardinality(w in doc(5), ) {
        let n = w.len();
        let spans = (n + 1) * (n + 2) / 2;
        prop_assert_eq!(universal(w.bytes(), &["x"]).len(), spans);
        prop_assert_eq!(universal(w.bytes(), &["x", "y"]).len(), spans * spans);
    }

    #[test]
    fn extractor_spans_match_occurrences(w in doc(10)) {
        // Σ*·x{ab}·Σ*: spans of "ab" = KMP occurrences.
        let g = RegexFormula::extractor(RegexFormula::capture("x", RegexFormula::pattern("ab")));
        let rel = g.evaluate(w.bytes());
        let occurrences = fc_words::search::find_all(w.bytes(), b"ab");
        prop_assert_eq!(rel.len(), occurrences.len(), "w={}", w);
        for t in &rel.tuples {
            prop_assert!(occurrences.contains(&t[0].start));
            prop_assert_eq!(t[0].len(), 2);
        }
    }

    #[test]
    fn two_split_has_len_plus_one_tuples(w in doc(8)) {
        let g = RegexFormula::cat([
            RegexFormula::capture("x", RegexFormula::any_star()),
            RegexFormula::capture("y", RegexFormula::any_star()),
        ]);
        prop_assert_eq!(g.evaluate(w.bytes()).len(), w.len() + 1);
    }

    #[test]
    fn boolean_spanner_union_or(w in doc(6)) {
        let has_aa = Spanner::regex(RegexFormula::extractor(RegexFormula::pattern("aa")));
        let has_bb = Spanner::regex(RegexFormula::extractor(RegexFormula::pattern("bb")));
        let either = Rc::new(Spanner::Union(has_aa.clone(), has_bb.clone()));
        prop_assert_eq!(
            either.accepts(w.bytes()),
            has_aa.accepts(w.bytes()) || has_bb.accepts(w.bytes())
        );
        let both = Rc::new(Spanner::Join(has_aa.clone(), has_bb.clone()));
        prop_assert_eq!(
            both.accepts(w.bytes()),
            has_aa.accepts(w.bytes()) && has_bb.accepts(w.bytes())
        );
    }

    #[test]
    fn eq_select_spanner_matches_direct_square_test(w in doc(8)) {
        let s = Spanner::eq_select(
            "x",
            "y",
            Spanner::regex(RegexFormula::cat([
                RegexFormula::capture("x", RegexFormula::any_star()),
                RegexFormula::capture("y", RegexFormula::any_star()),
            ])),
        );
        let direct = w.len() % 2 == 0 && {
            let (a, b) = w.bytes().split_at(w.len() / 2);
            a == b
        };
        prop_assert_eq!(s.accepts(w.bytes()), direct, "w={}", w);
    }
}

/// Random spanner expressions over two fixed leaves (schemas {x,y} and
/// {y,z}) — closures excluded so everything is structurally comparable.
fn spanner_expr() -> impl Strategy<Value = Rc<Spanner>> {
    let leaf_xy = Spanner::regex(RegexFormula::cat([
        RegexFormula::capture("x", RegexFormula::any_star()),
        RegexFormula::capture("y", RegexFormula::any_star()),
    ]));
    let leaf_yz = Spanner::regex(RegexFormula::cat([
        RegexFormula::capture("y", RegexFormula::any_star()),
        RegexFormula::capture("z", RegexFormula::any_star()),
    ]));
    let leaf = prop_oneof![Just(leaf_xy), Just(leaf_yz)];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rc::new(Spanner::Join(a, b))),
            inner
                .clone()
                .prop_map(|a| Rc::new(Spanner::Union(a.clone(), a))),
            inner.clone().prop_map(|a| {
                let schema = a.schema();
                let keep: Vec<String> = schema.into_iter().take(1).collect();
                Rc::new(Spanner::Project(keep, a))
            }),
            inner.clone().prop_map(|a| {
                let schema = a.schema();
                let x = schema[0].clone();
                let y = schema.last().unwrap().clone();
                Rc::new(Spanner::EqSelect(x, y, a))
            }),
            inner
                .clone()
                .prop_map(|a| Rc::new(Spanner::Difference(a.clone(), a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_semantics_on_random_expressions(s in spanner_expr(), w in doc(5)) {
        let optimized = fc_spanners::optimize::optimize(&s);
        prop_assert_eq!(
            s.evaluate(w.bytes()),
            optimized.evaluate(w.bytes()),
            "w={} original={:?} optimized={:?}", w, s, optimized
        );
    }

    #[test]
    fn vset_backend_agrees_on_random_leaf_formulas(w in doc(6)) {
        use fc_spanners::vset_automaton::VSetAutomaton;
        let formulas = [
            RegexFormula::extractor(RegexFormula::capture("x", RegexFormula::pattern("a+"))),
            RegexFormula::cat([
                RegexFormula::capture("x", RegexFormula::pattern("(ab)*")),
                RegexFormula::capture("y", RegexFormula::any_star()),
            ]),
        ];
        for f in &formulas {
            let direct = f.evaluate(w.bytes());
            let vset = VSetAutomaton::compile(f).evaluate(w.bytes());
            prop_assert_eq!(direct, vset, "w={} f={:?}", w, f);
        }
    }
}
