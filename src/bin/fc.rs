//! `fc` — command-line front end for the FC / EF-games toolkit.
//!
//! ```text
//! fc check  '<formula>' <word> [--stats] [--backend B]  model-check a sentence
//! fc solve  '<formula>' <word> [--stats] [--backend B]  print all assignments
//! fc lint   '<formula>' [flags]       diagnostics (see docs/ANALYSIS.md)
//! fc game   <w> <v> <k> [--fast] [--stats]   decide w ≡_k v, show a winning line
//!                                     (--fast: semilinear arithmetic oracle
//!                                     for powers of a shared primitive root,
//!                                     with the certificate; falls back to
//!                                     the solver when ineligible)
//! fc classes <k> <max_exponent>       unary ≡_k class table (Lemma 3.6)
//! fc fooling <lang> <k> [limit]       fooling pair for anbn | L1..L6
//! fc bounded '<regex>'                boundedness of a regular language
//! fc definable '<regex>' [--budget N] FC-definability verdict + certificate
//! fc serve [--addr A] [--workers N] [--plan-cache N] [--port-file P]
//!                                     long-running query service (docs/SERVE.md)
//! ```
//!
//! `fc lint` flags: `--json` (machine-readable report), `--deny-warnings`
//! (warnings fail the exit code), `--sentence` (require a sentence, FC006),
//! `--pure` (forbid regular constraints, FC007), `--allow <CODE>`
//! (suppress a rule), `--qr-budget <N>` (FC104 threshold), `--fc2-budget <N>`
//! (FC2xx DFA-state cap, 0 disables), `--no-semantic`
//! (skip the DFA-backed rules), `--rules` (print the rule registry).
//! Exit codes: 0 clean, 1 findings (errors, or warnings under
//! `--deny-warnings`), 2 usage error. `fc check` and `fc solve` run the
//! same analysis first: lint errors abort, warnings go to stderr.
//! With `--stats`, both print the compiled evaluator's `EvalStats` line
//! (plan size, DFA count, frames explored, guard hits, wall time). With
//! `--backend <dense|succinct|auto>`, both force the factor-structure
//! backend (default `auto`: dense up to |w| = 64, succinct beyond — see
//! docs/STRUCTURE.md).
//!
//! Formula syntax: see `fc_logic::parser` — e.g.
//! `fc check 'E x, y: x = y.y & !(E z1, z2: ((z1 = z2.x) | (z1 = x.z2)) & !(z2 = eps))' abab`

use fc_suite::games::pow2;
use fc_suite::games::solver::EfSolver;
use fc_suite::games::Side;
use fc_suite::logic::analysis::{self, AnalysisConfig, Analyzer, Severity};
use fc_suite::logic::eval::Assignment;
use fc_suite::logic::parser::parse_formula;
use fc_suite::logic::plan::{EvalStats, Plan};
use fc_suite::logic::reg_to_fc::definable_to_fc;
use fc_suite::logic::{BackendKind, FactorStructure, Formula};
use fc_suite::reglang::definable::{
    fc_definable_regex, DefinabilityBudget, FcDefinability, Inconclusive,
};
use fc_suite::reglang::{bounded, Dfa, Regex};
use fc_suite::relations::languages;
use fc_suite::serve::{Server, ServerConfig};
use fc_suite::words::{Alphabet, Word};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("lint") => return cmd_lint(&args[1..]),
        Some("game") => cmd_game(&args[1..]),
        Some("classes") => cmd_classes(&args[1..]),
        Some("fooling") => cmd_fooling(&args[1..]),
        Some("bounded") => cmd_bounded(&args[1..]),
        Some("definable") => cmd_definable(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: fc <check|solve|lint|game|classes|fooling|bounded|definable|serve> …"
            );
            eprintln!("see the module docs (src/bin/fc.rs) for details");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn need<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument: {what}"))
}

/// Runs the analyzer before evaluation: lint errors (including parse
/// errors, FC000) abort the command; warnings and notes go to stderr.
fn lint_gate(src: &str, expect_sentence: bool) -> Result<Formula, String> {
    let config = AnalysisConfig {
        expect_sentence,
        ..Default::default()
    };
    let diags = Analyzer::new(config).analyze_source(src);
    let (errors, _, _) = analysis::counts(&diags);
    if errors > 0 {
        let rendered: Vec<String> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.render_human(Some(src)))
            .collect();
        let hint = if diags.iter().any(|d| d.code == "FC006") {
            "\nhint: use `fc solve` to enumerate assignments for open formulas"
        } else {
            ""
        };
        return Err(format!(
            "formula rejected by lint:\n{}{hint}",
            rendered.join("\n")
        ));
    }
    for d in &diags {
        eprintln!("{}", d.render_human(Some(src)));
    }
    parse_formula(src)
}

/// Splits `args` into positional arguments and the `--stats` /
/// `--backend <dense|succinct|auto>` flags (shared by `fc check` and
/// `fc solve`).
fn split_stats_flag(args: &[String]) -> Result<(Vec<&str>, bool, Option<BackendKind>), String> {
    let mut pos = Vec::new();
    let mut stats = false;
    let mut backend = None;
    let mut args = args.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stats" => stats = true,
            "--backend" => {
                backend = match args.next().map(String::as_str) {
                    Some("dense") => Some(BackendKind::Dense),
                    Some("succinct") => Some(BackendKind::Succinct),
                    Some("auto") => None,
                    Some(other) => {
                        return Err(format!(
                            "--backend: expected dense|succinct|auto, got '{other}'"
                        ))
                    }
                    None => return Err("--backend needs a value (dense|succinct|auto)".into()),
                };
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            other => pos.push(other),
        }
    }
    Ok((pos, stats, backend))
}

/// Builds the word's structure on the requested backend (`None` = the
/// word-length automatic choice).
fn build_structure(word: &str, backend: Option<BackendKind>) -> FactorStructure {
    match backend {
        Some(kind) => {
            let word = Word::from(word);
            let sigma = Alphabet::from_symbols(&word.symbols());
            FactorStructure::with_backend(word, &sigma, kind)
        }
        None => FactorStructure::of_word(word),
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let (pos, want_stats, backend) = split_stats_flag(args)?;
    let phi = lint_gate(pos.first().ok_or("missing argument: formula")?, true)?;
    let word = *pos.get(1).ok_or("missing argument: word")?;
    let s = build_structure(word, backend);
    let plan = Plan::compile(&phi);
    let mut stats = EvalStats::default();
    let verdict = plan.eval_with_stats(&s, &Assignment::new(), &mut stats);
    println!(
        "{word} ⊨ φ ? {verdict}   (qr = {}, desugared qr = {})",
        phi.qr(),
        phi.qr_desugared()
    );
    if want_stats {
        println!("stats: {}", stats.render());
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let (pos, want_stats, backend) = split_stats_flag(args)?;
    let phi = lint_gate(pos.first().ok_or("missing argument: formula")?, false)?;
    let word = *pos.get(1).ok_or("missing argument: word")?;
    let s = build_structure(word, backend);
    let plan = Plan::compile(&phi);
    let mut stats = EvalStats::default();
    let sols = plan.satisfying_assignments_with_stats(&s, &mut stats);
    println!("⟦φ⟧({word}) has {} assignment(s):", sols.len());
    for m in sols.iter().take(50) {
        let cells: Vec<String> = m
            .iter()
            .map(|(v, id)| format!("{v} ↦ {}", s.render(*id)))
            .collect();
        println!("  {{{}}}", cells.join(", "));
    }
    if sols.len() > 50 {
        println!("  … and {} more", sols.len() - 50);
    }
    if want_stats {
        println!("stats: {}", stats.render());
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let usage = |msg: &str| -> ExitCode {
        eprintln!("{msg}");
        eprintln!(
            "usage: fc lint '<formula>' [--json] [--deny-warnings] [--sentence] [--pure] \
             [--allow <CODE>] [--qr-budget <N>] [--fc2-budget <N>] [--no-semantic] [--rules]"
        );
        ExitCode::from(2)
    };
    let mut config = AnalysisConfig::default();
    let mut json = false;
    let mut deny_warnings = false;
    let mut show_rules = false;
    let mut formula: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--sentence" => config.expect_sentence = true,
            "--pure" => config.expect_pure_fc = true,
            "--no-semantic" => config.semantic = false,
            "--rules" => show_rules = true,
            "--allow" => match it.next() {
                Some(code) => {
                    if analysis::rule(code).is_none() {
                        return usage(&format!("--allow: unknown rule code '{code}'"));
                    }
                    config.allow.insert(code.clone());
                }
                None => return usage("--allow needs a rule code (e.g. FC103)"),
            },
            "--qr-budget" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.qr_blowup_threshold = n,
                None => return usage("--qr-budget needs a number"),
            },
            "--fc2-budget" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.fc2_budget = n,
                None => return usage("--fc2-budget needs a number"),
            },
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag '{flag}'"));
            }
            src => {
                if formula.replace(src).is_some() {
                    return usage("expected exactly one formula argument");
                }
            }
        }
    }
    if show_rules {
        println!("{:<6} {:<28} {:<8} summary", "code", "name", "severity");
        for r in analysis::rules() {
            println!(
                "{:<6} {:<28} {:<8} {}",
                r.code,
                r.name,
                r.default_severity.as_str(),
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }
    let Some(src) = formula else {
        return usage("missing formula argument");
    };
    let diags = Analyzer::new(config).analyze_source(src);
    let (errors, warnings, notes) = analysis::counts(&diags);
    if json {
        let body: Vec<String> = diags.iter().map(analysis::Diagnostic::to_json).collect();
        println!(
            "{{\"formula\":\"{}\",\"diagnostics\":[{}],\"counts\":{{\"error\":{errors},\"warning\":{warnings},\"note\":{notes}}}}}",
            analysis::json_escape(src),
            body.join(",")
        );
    } else {
        for d in &diags {
            println!("{}", d.render_human(Some(src)));
        }
        println!(
            "{} error(s), {} warning(s), {} note(s)",
            errors, warnings, notes
        );
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_game(args: &[String]) -> Result<(), String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut fast = false;
    let mut show_stats = false;
    for arg in args {
        match arg.as_str() {
            "--fast" => fast = true,
            "--stats" => show_stats = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            other => pos.push(other),
        }
    }
    let w = *pos.first().ok_or("missing argument: w")?;
    let v = *pos.get(1).ok_or("missing argument: v")?;
    let k: u32 = pos
        .get(2)
        .ok_or("missing argument: k")?
        .parse()
        .map_err(|_| "k must be a number".to_string())?;
    if fast && game_fast(w, v, k)? {
        return Ok(());
    }
    let mut solver = EfSolver::of(w, v);
    if show_stats {
        solver.attach_table(std::sync::Arc::new(fc_suite::games::TransTable::new(
            fc_suite::games::DEFAULT_TABLE_CAPACITY >> 4,
        )));
    }
    let verdict = solver.equivalent_auto(k);
    let stats = solver.stats();
    println!(
        "{w} ≡_{k} {v} ? {verdict}   ({} states explored, {} memo hits, {} moves pruned, {:.3?} wall)",
        solver.states_explored(),
        stats.memo_hits,
        stats.pruned_moves,
        stats.wall
    );
    if show_stats {
        if let Some((cw, cv)) = fc_suite::games::canon::canonical_pair(w.as_bytes(), v.as_bytes()) {
            println!(
                "  canonical pair: {} / {}",
                String::from_utf8_lossy(&cw),
                String::from_utf8_lossy(&cv)
            );
        }
        println!(
            "  solver table probes: {} hits, {} misses",
            stats.table_hits, stats.table_misses
        );
        if let Some(table) = solver.shared_table() {
            let t = table.stats();
            println!(
                "  shared table: {} inserts, {} hits, {} misses, {} evictions, {} slots, {} bytes",
                t.inserts,
                t.hits,
                t.misses,
                t.evictions,
                t.capacity,
                table.bytes()
            );
        }
    }
    if !verdict {
        if let Some(line) = solver.spoiler_winning_line(k) {
            println!("Spoiler winning line:");
            for (i, mv) in line.iter().enumerate() {
                let (side, word) = match mv.side {
                    Side::A => ("A", solver.game().a.render(mv.element)),
                    Side::B => ("B", solver.game().b.render(mv.element)),
                };
                println!("  round {}: pick {side}:{word}", i + 1);
            }
        }
        if let Some(min_k) = EfSolver::of(w, v).distinguishing_rounds(k) {
            if let Some(phi) = fc_suite::games::certificate::distinguishing_sentence(w, v, min_k) {
                let printed = phi.to_string();
                if printed.len() <= 400 {
                    println!("certificate (qr ≤ {min_k}): {printed}");
                } else {
                    println!(
                        "certificate (qr ≤ {min_k}): {} … ({} chars)",
                        &printed.chars().take(200).collect::<String>(),
                        printed.len()
                    );
                }
            }
        }
    }
    Ok(())
}

/// `fc game --fast`: try the semilinear arithmetic oracle before touching
/// the game solver. Returns `Ok(true)` when the oracle was eligible (the
/// verdict plus its certificate have been printed), `Ok(false)` to fall
/// back to the solver. This is the one entry point that deliberately pays
/// for the rank-3 unary table build (seconds to minutes; every later
/// `--fast` call in the process reuses it).
fn game_fast(w: &str, v: &str, k: u32) -> Result<bool, String> {
    use fc_suite::games::arith::{ArithOracle, ArithRoute};
    use fc_suite::games::batch::periodic_table_builder;
    use fc_suite::words::primitive_root;

    let oracle = ArithOracle::global();
    let t0 = std::time::Instant::now();
    let verdict = oracle.verdict_words(w.as_bytes(), v.as_bytes(), k, true, |root| {
        let max_exp = (w.len().max(v.len()) / root.len()) as u64;
        periodic_table_builder(k, root, (max_exp + 8).max(16))
    });
    let Some(verdict) = verdict else {
        eprintln!(
            "note: --fast is ineligible here (rank {k} beyond the exact tables, or the words \
             are not powers of a shared primitive root); using the game solver"
        );
        return Ok(false);
    };
    fn show(s: &str) -> &str {
        if s.is_empty() {
            "ε"
        } else {
            s
        }
    }
    println!(
        "{} ≡_{k} {} ? {}   (arithmetic route, {:.3?} wall)",
        show(w),
        show(v),
        verdict.equivalent,
        t0.elapsed()
    );
    match verdict.route {
        ArithRoute::Equal => println!("certificate: the words are identical"),
        ArithRoute::Unary => {
            let table = oracle
                .unary_table_ready(k)
                .expect("unary route implies a cached table");
            let cert = table.certificate();
            if table.classes.len() <= 32 {
                println!("{cert}");
            } else {
                // Hundreds of classes at k = 3: keep the header and the
                // two classes the verdict actually compared.
                let mut lines = cert.lines();
                println!("{}", lines.next().unwrap_or_default());
                let (p, q) = (w.len() as u64, v.len() as u64);
                let (cp, cq) = (table.class_index(p), table.class_index(q));
                for (i, line) in lines.enumerate() {
                    if i as u32 == cp || i as u32 == cq {
                        println!("{line}");
                    }
                }
                println!(
                    "  ({} further classes elided; the full table is `UnaryClassTable::certificate()`)",
                    table.classes.len() - if cp == cq { 1 } else { 2 }
                );
            }
        }
        ArithRoute::RootRankZero => println!(
            "certificate: same primitive root ⇒ same occurring symbols, and rank 0 only \
             compares the constant seeds"
        ),
        ArithRoute::Periodic => {
            let (root, _) = primitive_root(w.as_bytes());
            let table = oracle
                .periodic_table_cached(k, &root)
                .expect("periodic route implies a cached table");
            println!(
                "certificate: exponent table for root {root}, solver-classified on 0..={}",
                table.window
            );
            match table.tail {
                Some((t, p)) => println!("  tail: periodic with threshold {t}, period {p}"),
                None => println!("  tail: not yet stable inside the window"),
            }
            if let Some((p, q)) = table.minimal_pair() {
                println!("  minimal pair: {root}^{p} ≡_{k} {root}^{q}");
            }
        }
    }
    Ok(true)
}

fn cmd_classes(args: &[String]) -> Result<(), String> {
    let k: u32 = need(args, 0, "k")?
        .parse()
        .map_err(|_| "k must be a number".to_string())?;
    let limit: usize = need(args, 1, "max exponent")?
        .parse()
        .map_err(|_| "limit must be a number".to_string())?;
    let classes = pow2::unary_classes(k, limit);
    println!("≡_{k} classes of a^0 .. a^{limit}:");
    println!("{}", pow2::render_classes(&classes));
    match pow2::minimal_unary_pair(k, limit) {
        Some((p, q)) => println!("minimal pair: a^{p} ≡_{k} a^{q}"),
        None => println!("no pair with exponents ≤ {limit}"),
    }
    Ok(())
}

fn cmd_fooling(args: &[String]) -> Result<(), String> {
    let name = need(args, 0, "language (anbn|L1..L6)")?;
    let k: u32 = need(args, 1, "k")?
        .parse()
        .map_err(|_| "k must be a number".to_string())?;
    let limit: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let catalogue = languages::catalogue();
    let lang = catalogue
        .iter()
        .find(|l| l.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown language {name}; try anbn, L1, …, L6"))?;
    match lang.fooling_pair(k, limit) {
        Some(pair) => {
            println!("inside  (∈ {}): {}", lang.name, pair.inside);
            println!("outside (∉ {}): {}", lang.name, pair.outside);
            println!("solver-confirmed ≡_{k}; exponents {:?}", pair.exponents);
            Ok(())
        }
        None => Err(format!("no rank-{k} fooling pair with exponents ≤ {limit}")),
    }
}

fn cmd_bounded(args: &[String]) -> Result<(), String> {
    let pattern = need(args, 0, "regex")?;
    let re = Regex::parse(pattern)?;
    let mut alpha = re.symbols();
    if alpha.is_empty() {
        alpha = b"ab".to_vec();
    }
    let dfa = Dfa::from_regex(&re, &alpha);
    if bounded::is_bounded(&dfa) {
        let witness = bounded::bounded_witness(&dfa).expect("bounded");
        let rendered: Vec<String> = witness
            .iter()
            .filter(|w| !w.is_empty())
            .map(|w| format!("{w}*"))
            .collect();
        println!("L({pattern}) is BOUNDED");
        if rendered.len() <= 24 {
            println!("witness: {}", rendered.join("·"));
        } else {
            println!(
                "witness: {}· … ({} factors)",
                rendered[..8].join("·"),
                rendered.len()
            );
        }
    } else {
        println!("L({pattern}) is UNBOUNDED");
    }
    // Also enumerate a few members for orientation.
    let members = fc_suite::reglang::enumerate::enumerate_dfa(&dfa, 5);
    let names: Vec<String> = members.iter().take(12).map(Word::to_string).collect();
    println!("members up to length 5: {}", names.join(", "));
    let _ = Alphabet::ab();
    Ok(())
}

fn cmd_definable(args: &[String]) -> Result<(), String> {
    let mut pattern: Option<&str> = None;
    let mut budget = DefinabilityBudget::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => budget = DefinabilityBudget::with_states(n),
                None => return Err("--budget needs a number".to_string()),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            src => {
                if pattern.replace(src).is_some() {
                    return Err("expected exactly one regex argument".to_string());
                }
            }
        }
    }
    let pattern = pattern.ok_or("missing argument: regex")?;
    let re = Regex::parse(pattern)?;
    let mut alpha = re.symbols();
    if alpha.is_empty() {
        alpha = b"ab".to_vec();
    }
    match fc_definable_regex(&re, &alpha, &budget) {
        FcDefinability::Definable(expr) => {
            println!("L({pattern}) is FC-DEFINABLE");
            println!("witness: {expr}");
            let phi = definable_to_fc("x", &expr, &alpha);
            let printed = phi.to_string();
            if printed.len() <= 400 {
                println!("FC sentence for x: {printed}");
            } else {
                println!(
                    "FC sentence for x: {} … ({} chars)",
                    printed.chars().take(200).collect::<String>(),
                    printed.len()
                );
            }
        }
        FcDefinability::NotDefinable(ob) => {
            println!("L({pattern}) is NOT FC-DEFINABLE");
            println!("obstruction: {}", ob.describe());
            println!("separating family (i, word, accepted):");
            for (i, (w, acc)) in ob.separating_family(2).into_iter().enumerate() {
                let shown = if w.is_empty() {
                    "ε".to_string()
                } else {
                    w.to_string()
                };
                println!("  i={i}: {shown}  {}", if acc { "∈ L" } else { "∉ L" });
            }
        }
        FcDefinability::Inconclusive(why) => {
            println!("L({pattern}) is INCONCLUSIVE within budget");
            match why {
                Inconclusive::BudgetExceeded { states, budget } => println!(
                    "minimal DFA has {states} states, exceeding the budget of {budget}; \
                     raise --budget"
                ),
                Inconclusive::Unresolved => println!(
                    "the language lies outside the witness class and no permutation \
                     obstruction was found — the oracle never guesses"
                ),
            }
        }
    }
    Ok(())
}

/// `fc serve [--addr A] [--workers N] [--plan-cache N] [--port-file P]` —
/// bind the line-protocol query service and block until a client sends
/// `{"op":"shutdown"}`. With `--port-file`, the resolved address (useful
/// with an ephemeral `--addr 127.0.0.1:0`) is written to the given path
/// once the socket is bound — scripts wait on that file instead of racing
/// the bind.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut port_file: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs an address")?.clone();
            }
            "--workers" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.workers = n,
                None => return Err("--workers needs a number".to_string()),
            },
            "--plan-cache" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.engine.plan_cache_capacity = n,
                None => return Err("--plan-cache needs a number".to_string()),
            },
            "--port-file" => {
                port_file = Some(it.next().ok_or("--port-file needs a path")?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    println!(
        "fc-serve listening on {addr} ({} workers)",
        server.worker_count()
    );
    if let Some(path) = port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("writing {path}: {e}"))?;
    }
    server.run().map_err(|e| format!("serve failed: {e}"))
}
