//! Word-combinatorics experiments: E10, E13.

use crate::report::{Effort, ExperimentReport};
use fc_words::conjugacy::{
    are_conjugate, are_coprimitive, check_stabilisation, common_factor_bound,
};
use fc_words::exponent::{check_expo_increase, exp, power_factorisation};
use fc_words::periodicity::{check_periodicity_lemma, longest_common_omega_factor};
use fc_words::primitivity::{check_interior_occurrence_lemma, is_primitive};
use fc_words::{Alphabet, Word};

/// E10 — the primitive-word toolbox: Lemma D.1 (interior occurrences),
/// Lemma 4.8 (unique factorisation), Lemma D.4 (exponent additivity), all
/// swept over exhaustive windows.
pub fn e10_primitive_toolbox(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let (word_len, power) = match effort {
        Effort::Quick => (4usize, 3usize),
        Effort::Full => (5usize, 4usize),
    };

    // Lemma D.1 over all primitive words of the window.
    let mut prim_count = 0;
    let mut d1_failures = 0;
    for w in sigma.words_up_to(word_len) {
        if w.is_empty() {
            continue;
        }
        if is_primitive(w.bytes()) {
            prim_count += 1;
            if check_interior_occurrence_lemma(w.bytes(), power).is_err() {
                d1_failures += 1;
            }
        }
    }
    rep.check(
        d1_failures == 0,
        format!("Lemma D.1 holds for all {prim_count} primitive words of len ≤ {word_len} (powers ≤ {power})"),
    );

    // Lemma 4.8: factorisation exists, reassembles, and has the claimed
    // shape, for every factor of w^power with positive exponent.
    let mut facs_checked = 0;
    let mut facs_failures = 0;
    for w in sigma.words_up_to(word_len) {
        if w.is_empty() || !is_primitive(w.bytes()) {
            continue;
        }
        let wm = w.pow(power);
        let mut seen = std::collections::HashSet::new();
        for i in 0..wm.len() {
            for j in i + 1..=wm.len() {
                let u = wm.factor(i, j);
                if !seen.insert(u.clone()) || exp(w.bytes(), u.bytes()) == 0 {
                    continue;
                }
                facs_checked += 1;
                match power_factorisation(w.bytes(), u.bytes()) {
                    Some(f) => {
                        if f.assemble(w.bytes()) != u
                            || f.left.len() >= w.len()
                            || f.right.len() >= w.len()
                        {
                            facs_failures += 1;
                        }
                    }
                    None => facs_failures += 1,
                }
            }
        }
    }
    rep.check(
        facs_failures == 0,
        format!("Lemma 4.8 factorisations exact on {facs_checked} (w, u) instances"),
    );

    // Lemma D.4: exponent additivity within powers.
    let mut expo_checked = 0;
    let mut expo_failures = 0;
    for w in ["a", "ab", "aab", "aabb"] {
        for u in sigma.words_up_to(4) {
            for v2 in sigma.words_up_to(4) {
                expo_checked += 1;
                if !check_expo_increase(w.as_bytes(), u.bytes(), v2.bytes()) {
                    expo_failures += 1;
                }
            }
        }
    }
    rep.check(
        expo_failures == 0,
        format!("Lemma D.4 (exp additivity ∈ {{0, +1}}) holds on {expo_checked} triples"),
    );

    // Example 4.7 regression.
    let u = b"aaaabaabaab";
    rep.check(
        exp(b"a", u) == 4 && exp(b"aab", u) == 3,
        "Example 4.7: exp_a = 4, exp_aab = 3 on aaaabaabaab",
    );
    rep
}

/// E13 — periodicity (Lemma 4.11) and co-primitivity (Lemma 4.12) swept
/// over primitive pairs.
pub fn e13_coprimitivity(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let max_len = match effort {
        Effort::Quick => 4,
        Effort::Full => 5,
    };
    let prims: Vec<Word> = sigma
        .words_up_to(max_len)
        .filter(|w| is_primitive(w.bytes()))
        .collect();
    rep.row(format!(
        "{} primitive words of length ≤ {max_len}",
        prims.len()
    ));

    let mut pairs = 0;
    let mut lemma_4_11_failures = 0;
    let mut equivalence_failures = 0;
    for w in &prims {
        for v in &prims {
            pairs += 1;
            if !check_periodicity_lemma(w.bytes(), v.bytes()) {
                lemma_4_11_failures += 1;
            }
            // Lemma 4.12 (1)⇔(3): co-primitive iff bounded common ω-factors.
            let cop = are_coprimitive(w.bytes(), v.bytes());
            let bounded = longest_common_omega_factor(w.bytes(), v.bytes()) != usize::MAX;
            if cop != bounded {
                equivalence_failures += 1;
            }
        }
    }
    rep.check(
        lemma_4_11_failures == 0,
        format!("Lemma 4.11 (periodicity) holds on {pairs} primitive pairs"),
    );
    rep.check(
        equivalence_failures == 0,
        "Lemma 4.12 (1)⇔(3): co-primitivity ⟺ bounded common ω-factors on all pairs",
    );

    // Lemma 4.12 (2): stabilisation, spot-checked on the paper's pairs.
    for (w, v) in [
        ("aba", "bba"),
        ("abaabb", "bbaaba"),
        ("a", "b"),
        ("ab", "ba"),
    ] {
        rep.check(
            check_stabilisation(w.as_bytes(), v.as_bytes(), 2),
            format!("stabilisation behaviour correct for ({w}, {v})"),
        );
    }

    // The paper's §4.3 example.
    rep.check(
        are_conjugate(b"aabba", b"aaabb") && !are_coprimitive(b"aabba", b"aaabb"),
        "aabba / aaabb: conjugate, hence not co-primitive (paper example)",
    );
    rep.check(
        are_coprimitive(b"aba", b"bba") && common_factor_bound(b"aba", b"bba") == Some(4),
        "aba / bba: co-primitive with common-factor bound |w|+|v|−2 = 4",
    );
    rep
}
