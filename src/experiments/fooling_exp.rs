//! Fooling-Lemma experiments: E08, E09, E14, E15.

use crate::report::{Effort, ExperimentReport};
use fc_games::fooling::FoolingInstance;
use fc_relations::languages;

/// E08 — Example 4.5: fooling pairs for `aⁿbⁿ`, rank by rank.
pub fn e08_anbn(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let inst = FoolingInstance::new("", "a", "", "b", "", |p| p).expect("a, b co-primitive");
    let (max_k, limit) = match effort {
        Effort::Quick => (1u32, 10usize),
        Effort::Full => (2u32, 20usize),
    };
    for k in 1..=max_k {
        match inst.fooling_pair(k, limit) {
            Some(pair) => {
                let verified = inst.verify(&pair, 2 * limit).is_ok();
                rep.check(
                    verified,
                    format!(
                        "k={k}: a^{}b^{} ∈ L ≡_{k} a^{}b^{} ∉ L (solver-confirmed)",
                        pair.p, pair.p, pair.q, pair.p
                    ),
                );
            }
            None => rep.check(
                false,
                format!("k={k}: no fooling pair within exponent {limit}"),
            ),
        }
    }
    // Claim C.2's intermediate step: prefix pairs.
    if let Some((p, q)) = inst.find_prefix_pair(1, 10) {
        rep.check(
            true,
            format!("prefix pair: a^{p} ≡₁ a^{q} (Pseudo-Congruence feed)"),
        );
    } else {
        rep.check(false, "no prefix pair found");
    }
    rep
}

/// E09 — Prop 4.6: `aⁿ(ba)ⁿ` with the r = 1 intersection.
pub fn e09_a_ba(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let inst = FoolingInstance::new("", "a", "", "ba", "", |p| p).expect("a, ba co-primitive");
    let (max_k, limit) = match effort {
        Effort::Quick => (1u32, 10usize),
        Effort::Full => (2u32, 20usize),
    };
    rep.row("Facs(aᵐ) ∩ Facs((ba)ⁿ) = {ε, a}, so Lemma 4.4 applies with r = 1".to_string());
    for k in 1..=max_k {
        match inst.fooling_pair(k, limit) {
            Some(pair) => {
                let verified = inst.verify(&pair, 2 * limit).is_ok();
                rep.check(
                    verified,
                    format!(
                        "k={k}: a^{}(ba)^{} ≡_{k} a^{}(ba)^{} (p={}, q={})",
                        pair.p, pair.p, pair.q, pair.p, pair.p, pair.q
                    ),
                );
            }
            None => rep.check(
                false,
                format!("k={k}: no fooling pair within exponent {limit}"),
            ),
        }
    }
    rep
}

/// E14 — the Fooling Lemma driver on assorted instances, including a
/// non-identity injective `f` and the L₅ block pair.
pub fn e14_fooling_driver(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let limit = match effort {
        Effort::Quick => 10usize,
        Effort::Full => 16usize,
    };
    // Co-primitivity is enforced.
    rep.check(
        FoolingInstance::new("", "ab", "", "ba", "", |p| p).is_err(),
        "conjugate blocks (ab, ba) are rejected",
    );
    rep.check(
        FoolingInstance::new("", "abab", "", "b", "", |p| p).is_err(),
        "imprimitive block abab is rejected",
    );
    // f(p) = 2p with frames.
    let inst = FoolingInstance::new("c", "a", "c", "b", "c", |p| 2 * p).expect("co-primitive");
    match inst.fooling_pair(1, limit) {
        Some(pair) => {
            let verified = inst.verify(&pair, 2 * limit).is_ok();
            rep.check(
                verified,
                format!(
                    "f(p) = 2p with frames: c·a^{}·c·b^{}·c ≡₁ c·a^{}·c·b^{}·c",
                    pair.p,
                    2 * pair.p,
                    pair.q,
                    2 * pair.p
                ),
            );
        }
        None => rep.check(false, "no fooling pair for f(p) = 2p"),
    }
    // The L5 blocks (longer period; smaller exponent budget).
    let inst5 = FoolingInstance::new("", "abaabb", "", "bbaaba", "", |p| p).expect("co-primitive");
    match inst5.fooling_pair(1, limit.min(12)) {
        Some(pair) => {
            let verified = inst5.verify(&pair, limit).is_ok();
            rep.check(
                verified,
                format!(
                    "L5 blocks: (abaabb)^{} (bbaaba)^{} ≡₁ (abaabb)^{} (bbaaba)^{}",
                    pair.p, pair.p, pair.q, pair.p
                ),
            );
        }
        None => rep.check(false, "no fooling pair for the L5 blocks"),
    }
    rep
}

/// E15 — Lemma 4.15: a solver-confirmed fooling pair for each of L₁…L₆
/// (plus aⁿbⁿ), rank by rank as far as the effort allows.
pub fn e15_l1_to_l6(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let (max_k, limit) = match effort {
        Effort::Quick => (1u32, 12usize),
        Effort::Full => (1u32, 20usize),
    };
    let mut totals = fc_games::batch::BatchStats::default();
    for lang in languages::catalogue() {
        for k in 1..=max_k {
            let (hit, stats) = lang.fooling_pair_with_stats(k, limit);
            totals.absorb(&stats);
            match hit {
                Some(pair) => rep.check(
                    true,
                    format!(
                        "{}: {} ∈ L ≡_{k} {} ∉ L (exponents {:?})",
                        lang.name, pair.inside, pair.outside, pair.exponents
                    ),
                ),
                None => rep.check(
                    false,
                    format!(
                        "{}: no rank-{k} fooling pair within exponent {limit}",
                        lang.name
                    ),
                ),
            }
        }
    }
    rep.row(format!("batch totals across the catalogue: {totals}"));
    rep
}
