//! Game-side experiments: E01, E03, E06, E07, E11, E12, and the figure
//! reproductions.

use crate::report::{Effort, ExperimentReport};
use fc_games::pow2;
use fc_games::solver::{equivalent, EfSolver};
use fc_games::strategies::{
    PrimitivePowerStrategy, PseudoCongruenceStrategy, TableStrategy, UnaryEndAlignedStrategy,
};
use fc_games::strategy::{play_line, validate_strategy};
use fc_games::{GamePair, Side};
use fc_words::Word;

/// E01 — Example 3.3: Spoiler wins the 2-round game on `a^{2i}` vs
/// `a^{2i−1}`, for every probed `i`.
pub fn e01_even_odd(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let max_i = match effort {
        Effort::Quick => 4,
        Effort::Full => 8,
    };
    for i in 1..=max_i {
        let w = "a".repeat(2 * i);
        let v = "a".repeat(2 * i - 1);
        let mut solver = EfSolver::of(&w, &v);
        let spoiler_wins_2 = !solver.equivalent(2);
        let min_k = solver.distinguishing_rounds(2);
        let stats = solver.stats();
        rep.check(
            spoiler_wins_2,
            format!(
                "a^{} ≢₂ a^{} (minimal distinguishing k = {:?}, states explored = {}, \
                 memo hits = {}, moves pruned = {}, wall = {:.3?})",
                2 * i,
                2 * i - 1,
                min_k,
                solver.states_explored(),
                stats.memo_hits,
                stats.pruned_moves,
                stats.wall
            ),
        );
    }
    rep
}

/// E03 — Lemma 3.6: minimal unary pairs per rank, ≡_k class tables, the
/// semilinear tail, and the powers-of-two collision.
pub fn e03_pow2(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    // The batch engine (structure arena + verdict memo + fingerprints)
    // extends the Full exhaustive scan bound from 20 to 40 exponents.
    let (ranks, limit) = match effort {
        Effort::Quick => (2u32, 16usize),
        Effort::Full => (2u32, 40usize),
    };
    for k in 0..=ranks {
        let (hit, stats) = pow2::minimal_unary_pair_with_stats(k, limit);
        match hit {
            Some((p, q)) => rep.row(format!(
                "k={k}: minimal pair a^{p} ≡_{k} a^{q}  [batch: {stats}]"
            )),
            None => rep.row(format!(
                "k={k}: no pair with exponents ≤ {limit} (search exhausted)  [batch: {stats}]"
            )),
        }
    }
    rep.row("rank 3: minimal pair exceeds exhaustive search range (≥ 40); see DESIGN notes");
    for k in 0..=ranks {
        let (classes, stats) = pow2::unary_classes_with_stats(k, limit.min(16));
        rep.row(format!(
            "k={k}: {} classes of a^0..a^{}  [batch: {stats}]",
            classes.len(),
            limit.min(16)
        ));
    }
    // The tail class is semilinear — fit it at rank 1.
    match pow2::fit_tail_class(1, 12) {
        Some(s) => rep.check(
            true,
            format!(
                "rank-1 tail class fits a semilinear set with {} parts",
                s.parts.len()
            ),
        ),
        None => rep.check(
            false,
            "rank-1 tail class is not eventually periodic on the window",
        ),
    }
    // Powers-of-two collide with a non-power inside one class (the engine
    // of Lemma 3.6's refutation).
    match pow2::pow2_collision(1, 12) {
        Some(class) => rep.check(
            true,
            format!("rank-1 class mixing powers and non-powers of 2: {class:?}"),
        ),
        None => rep.check(
            false,
            "no collision found — would contradict Lemma 3.6's argument",
        ),
    }
    rep
}

/// E06 — Lemmas 4.2/4.3 checked over all winning plays on solver-verified
/// instances.
pub fn e06_structural_lemmas(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let instances: Vec<(&str, String, String, u32)> = match effort {
        Effort::Quick => vec![
            ("unary rank-1", "a".repeat(3), "a".repeat(4), 1),
            ("equal words", "aba".into(), "aba".into(), 2),
        ],
        Effort::Full => vec![
            ("unary rank-1", "a".repeat(3), "a".repeat(4), 1),
            ("unary rank-2", "a".repeat(12), "a".repeat(14), 2),
            ("equal words", "aba".into(), "aba".into(), 2),
            ("equal words rank-3", "ab".into(), "ab".into(), 3),
        ],
    };
    for (label, w, v, k) in instances {
        match fc_games::lemmas::check_consistent_strategies(&w, &v, k) {
            Ok(None) => rep.check(true, format!("Lemma 4.2 holds on {label} ({w} ≡_{k} {v})")),
            Ok(Some(viol)) => rep.check(false, format!("Lemma 4.2 VIOLATED on {label}: {viol:?}")),
            Err(e) => rep.check(false, format!("{label}: {e}")),
        }
        match fc_games::lemmas::check_prefix_suffix(&w, &v, k) {
            Ok(None) => rep.check(true, format!("Lemma 4.3 holds on {label}")),
            Ok(Some(viol)) => rep.check(false, format!("Lemma 4.3 VIOLATED on {label}: {viol:?}")),
            Err(e) => rep.check(false, format!("{label}: {e}")),
        }
    }
    rep
}

/// E07 — Lemma 4.4: the composed strategy survives exhaustive Spoiler and
/// the solver confirms the composed equivalence.
pub fn e07_pseudo_congruence(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    // (w1, v1, w2, v2, k, r): composition instances.
    let instances: Vec<(String, String, String, String, u32, u32)> = match effort {
        Effort::Quick => vec![(
            "a".repeat(14),
            "a".repeat(12),
            "b".repeat(12),
            "b".repeat(12),
            1,
            0,
        )],
        Effort::Full => vec![
            (
                "a".repeat(14),
                "a".repeat(12),
                "b".repeat(12),
                "b".repeat(12),
                1,
                0,
            ),
            (
                "a".repeat(14),
                "a".repeat(12),
                "ba".repeat(12),
                "ba".repeat(12),
                1,
                1,
            ),
            ("ab".into(), "ab".into(), "ba".into(), "ba".into(), 2, 2),
        ],
    };
    // Full effort: the L6 three-block chain (Pseudo-Congruence twice).
    if matches!(effort, Effort::Full) {
        use fc_games::strategies::chain::chain_with_tables;
        let parts = vec![
            (Word::from("a").pow(14), Word::from("a").pow(12)),
            (Word::from("b").pow(12), Word::from("b").pow(12)),
            (Word::from("ab").pow(12), Word::from("ab").pow(12)),
        ];
        let (game, strategy) = chain_with_tables(&parts, 1);
        let validated = validate_strategy(&game, strategy.as_ref(), 1).is_none();
        let confirmed = equivalent(game.a.word().as_str(), game.b.word().as_str(), 1);
        rep.check(
            validated && confirmed,
            format!(
                "L6 chain: a¹⁴b¹²(ab)¹² ≡₁ a¹²b¹²(ab)¹² via two composed Pseudo-Congruence steps (validated = {validated}, solver = {confirmed})"
            ),
        );
    }
    for (w1, v1, w2, v2, k, r) in instances {
        let game1 = GamePair::of(&w1, &v1);
        let game2 = GamePair::of(&w2, &v2);
        let lookup_rounds = k + r + 2;
        let g1 = TableStrategy::new(game1.clone(), lookup_rounds);
        let g2 = TableStrategy::new(game2.clone(), lookup_rounds);
        let strat = PseudoCongruenceStrategy::new(game1, game2, Box::new(g1), Box::new(g2));
        let pre = strat.check_preconditions();
        let composed = strat.composed_game();
        let validated = validate_strategy(&composed, &strat, k).is_none();
        let confirmed = equivalent(composed.a.word().as_str(), composed.b.word().as_str(), k);
        rep.check(
            pre.is_some() && validated && confirmed,
            format!(
                "{w1}·{w2} ≡_{k} {v1}·{v2} (r = {:?}, validated = {validated}, solver = {confirmed})",
                pre
            ),
        );
    }
    rep
}

/// E11 — Lemma 4.9: the primitive-power strategy survives exhaustive
/// Spoiler for primitive roots, and panics on imprimitive ones.
pub fn e11_primitive_power(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let roots: Vec<&str> = match effort {
        Effort::Quick => vec!["ab"],
        Effort::Full => vec!["ab", "aab", "aabb", "aabab"],
    };
    let (p, q, k) = (12usize, 14usize, 1u32);
    for root in roots {
        let lookup_game = GamePair::of(&"a".repeat(q), &"a".repeat(p));
        let lookup = UnaryEndAlignedStrategy::new(q, p, 7);
        let strat = PrimitivePowerStrategy::new(Word::from(root), lookup_game, Box::new(lookup));
        let composed = strat.composed_game();
        let validated = validate_strategy(&composed, &strat, k).is_none();
        let confirmed = equivalent(composed.a.word().as_str(), composed.b.word().as_str(), k);
        rep.check(
            validated && confirmed,
            format!("({root})^{q} ≡_{k} ({root})^{p} via unary look-up (validated = {validated}, solver = {confirmed})"),
        );
    }
    rep
}

/// E12 — Prop 4.10: for any word `w`, some `v ≠ wᵖ` with `wᵖ ≡_k v`
/// (take the primitive root and pump it).
pub fn e12_all_words(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let words: Vec<&str> = match effort {
        Effort::Quick => vec!["abab", "aa"],
        Effort::Full => vec!["abab", "aa", "aabaab", "ab"],
    };
    let k = 1u32;
    for w in words {
        let (root, mult) = fc_words::primitive_root(w.as_bytes());
        // Pump the root: find exponents e ≠ e' (multiples of `mult` on one
        // side so the left word is a power of w) with root^e ≡_k root^e'.
        let mut found = None;
        'search: for e in 1..=8usize {
            let p = e * mult; // w^e = root^p
            for q in 1..=20usize {
                if q == p {
                    continue;
                }
                let a = Word::from(root.bytes()).pow(p);
                let b = Word::from(root.bytes()).pow(q);
                if equivalent(a.as_str(), b.as_str(), k) {
                    found = Some((e, p, q));
                    break 'search;
                }
            }
        }
        match found {
            Some((e, p, q)) => rep.check(
                true,
                format!("w = {w}: w^{e} = root^{p} ≡_{k} root^{q} (root = {root}, q ≠ p)"),
            ),
            None => rep.check(
                false,
                format!("w = {w}: no pumped equivalent found (search bound too small?)"),
            ),
        }
    }
    rep
}

/// F1–F3 — renders the paper's three figures from live transcripts.
pub fn figures(_effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();

    // Figure 1/3: a boundary-crossing factor u of w1·w2.
    rep.row("Fig 1: u ∈ Facs(w1·w2) \\ (Facs(w1) ∪ Facs(w2)) splits at the boundary:");
    rep.row("        |----w1----|----w2----|");
    rep.row("             |——— u = u1·u2 ———|  (u1 suffix of w1, u2 prefix of w2)");

    // Figure 2: the primitive-power response, from a live game.
    let lookup_game = GamePair::of(&"a".repeat(14), &"a".repeat(12));
    let lookup = UnaryEndAlignedStrategy::new(14, 12, 7);
    let mut strat = PrimitivePowerStrategy::new(Word::from("ab"), lookup_game, Box::new(lookup));
    let composed = strat.composed_game();
    let u = composed.a.id_of(b"babababababababababababa").expect("u");
    let (transcript, ok) = play_line(&composed, &mut strat, &[(Side::A, u)]);
    let d = transcript[0].duplicator;
    rep.check(
        ok,
        "Fig 2 live trace (Spoiler u₁·wⁿ·u₂ → Duplicator u₁·wᵐ·u₂):",
    );
    rep.row(format!(
        "        Spoiler  A: {}  (= b·(ab)¹¹·a, exp = 11)",
        composed.a.render(u)
    ));
    rep.row(format!(
        "        Duplicator B: {}  (exponent swapped via look-up game 𝒢_l)",
        composed.b.render(d)
    ));
    rep
}

/// E19 — §7 extension: existential (one-sided) games and the
/// existential-positive fragment.
pub fn e19_existential(effort: Effort) -> ExperimentReport {
    use fc_games::existential::{simulates, ExistentialSolver};
    let mut rep = ExperimentReport::new();
    // Directionality: a ⇛ aa but not back.
    rep.check(
        simulates("a", "aa", 2) && !simulates("aa", "a", 1),
        "⇛ is directional: a ⇛₂ aa, aa ⇛̸₁ a",
    );
    // ≡ refines ⇛ on a window.
    let sigma = fc_words::Alphabet::ab();
    let max_len = match effort {
        Effort::Quick => 3,
        Effort::Full => 4,
    };
    let words: Vec<Word> = sigma.words_up_to(max_len).collect();
    let mut checked = 0;
    let mut violations = 0;
    for w in &words {
        for v in &words {
            for k in 0..=2u32 {
                if equivalent(w.as_str(), v.as_str(), k) {
                    checked += 1;
                    let mut s = ExistentialSolver::new(GamePair::new(w.clone(), v.clone(), &sigma));
                    if !s.simulates(k) {
                        violations += 1;
                    }
                }
            }
        }
    }
    rep.check(
        violations == 0,
        format!("≡_k implies ⇛_k on {checked} instances over Σ^≤{max_len}"),
    );
    // The EP fragment marker agrees with the definition.
    use fc_logic::{Formula, Term};
    let ep = Formula::exists(
        &["x"],
        Formula::eq_cat(Term::var("x"), Term::Sym(b'a'), Term::Sym(b'a')),
    );
    let not_ep = Formula::not(ep.clone());
    rep.check(
        ep.is_existential_positive() && !not_ep.is_existential_positive(),
        "is_existential_positive classifies the fragment",
    );
    rep
}

/// E20 — §7 extension: pebble games for finite-variable FC.
pub fn e20_pebble(effort: Effort) -> ExperimentReport {
    use fc_games::pebble::pebble_equivalent;
    let mut rep = ExperimentReport::new();
    let sigma = fc_words::Alphabet::ab();
    let max_len = match effort {
        Effort::Quick => 3,
        Effort::Full => 3,
    };
    let words: Vec<Word> = sigma.words_up_to(max_len).collect();
    // ≡²_k coincides with ≡_k for k ≤ 2 on the window.
    let mut mismatches = 0;
    let mut checked = 0;
    for w in &words {
        for v in &words {
            for k in 0..=2u32 {
                checked += 1;
                if pebble_equivalent(w.as_str(), v.as_str(), 2, k)
                    != equivalent(w.as_str(), v.as_str(), k)
                {
                    mismatches += 1;
                }
            }
        }
    }
    rep.check(
        mismatches == 0,
        format!("≡²_k = ≡_k for k ≤ 2 on {checked} instances (pebbles don't bind below the reuse horizon)"),
    );
    // Reuse lets Spoiler walk: one pebble cannot distinguish what two can.
    rep.check(
        fc_games::pebble::pebble_equivalent("aaa", "aaaa", 1, 3)
            && !fc_games::pebble::pebble_equivalent("aa", "aaa", 2, 3),
        "1 pebble cannot accumulate context; 2 pebbles distinguish a² from a³",
    );
    let _ = effort;
    rep
}

/// E22 — certificates: for distinguishable pairs, synthesize an actual
/// rank-≤ k FC sentence from Spoiler's winning strategy and verify it with
/// the model checker (the constructive face of Theorem 3.5).
pub fn e22_certificates(effort: Effort) -> ExperimentReport {
    use fc_games::certificate::distinguishing_sentence;
    use fc_logic::eval::{holds, Assignment};
    use fc_logic::FactorStructure;
    let mut rep = ExperimentReport::new();
    let pairs: Vec<(&str, &str, u32)> = match effort {
        Effort::Quick => vec![("a", "aa", 1), ("ab", "ba", 1), ("aaaa", "aaa", 2)],
        Effort::Full => vec![
            ("a", "aa", 1),
            ("ab", "ba", 1),
            ("aaaa", "aaa", 2),
            ("aab", "aba", 2),
            ("abab", "abba", 2),
            ("aaaaaa", "aaaaa", 2),
        ],
    };
    for (w, v, k) in pairs {
        match distinguishing_sentence(w, v, k) {
            Some(phi) => {
                let sigma = fc_words::Alphabet::ab();
                let sw = FactorStructure::of_str(w, &sigma);
                let sv = FactorStructure::of_str(v, &sigma);
                let ok = phi.qr() <= k as usize
                    && holds(&phi, &sw, &Assignment::new())
                    && !holds(&phi, &sv, &Assignment::new());
                let printed = phi.to_string();
                let shown = if printed.chars().count() > 90 {
                    format!("{}…", printed.chars().take(90).collect::<String>())
                } else {
                    printed
                };
                rep.check(ok, format!("{w} vs {v} @ k={k}: {shown}"));
            }
            None => rep.check(false, format!("{w} vs {v} should be ≢_{k}")),
        }
    }
    // Equivalent pairs yield no certificate.
    rep.check(
        distinguishing_sentence(&"a".repeat(12), &"a".repeat(14), 2).is_none(),
        "no rank-2 certificate for the equivalent pair a¹² / a¹⁴ (as required)",
    );
    rep
}

/// E24 — Hintikka-style ≡_k class tables over binary windows: how much of
/// Σ^{≤n} can rank-k FC sentences resolve, and how the FO[EQ] positional
/// view compares.
pub fn e24_class_tables(effort: Effort) -> ExperimentReport {
    use fc_games::hintikka::{check_equivalence_laws, classes_parallel, classes_with_stats};
    let mut rep = ExperimentReport::new();
    let sigma = fc_words::Alphabet::ab();
    let max_len = match effort {
        Effort::Quick => 3,
        Effort::Full => 4,
    };
    let words: Vec<Word> = sigma.words_up_to(max_len).collect();
    let mut counts = Vec::new();
    for k in 0..=2u32 {
        let (c, stats) = classes_with_stats(&words, k);
        counts.push(c.len());
        rep.row(format!(
            "k={k}: {} classes over the {} words of Σ^≤{max_len}  [batch: {stats}]",
            c.len(),
            words.len()
        ));
        // The parallel grid must reproduce the sequential partition.
        rep.check(
            classes_parallel(&words, k, 4) == c,
            format!("k={k}: parallel window partition equals sequential"),
        );
    }
    rep.check(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "class counts are monotone in the rank",
    );
    // ≡_2 resolves the whole window (all classes singletons)?
    let full_resolution = counts[2] == words.len();
    rep.row(format!(
        "rank 2 {} the window of length-≤{max_len} words",
        if full_resolution {
            "fully resolves"
        } else {
            "does not yet resolve"
        }
    ));
    // Equivalence-relation laws hold (Theorem 3.5 corollary).
    let unary_words: Vec<Word> = fc_words::Alphabet::unary().words_up_to(6).collect();
    rep.check(
        check_equivalence_laws(&unary_words, 1).is_none(),
        "≡₁ satisfies the equivalence laws on a^0..a^6",
    );
    // Parallel class computation agrees with sequential (bulk API).
    rep.check(
        fc_games::pow2::unary_classes_parallel(2, 14, 4) == fc_games::pow2::unary_classes(2, 14),
        "parallel and sequential unary class tables agree (k = 2, limit 14)",
    );
    rep
}
