//! The experiment registry (DESIGN.md §3).
//!
//! Each experiment is a function `Effort → ExperimentReport`; the registry
//! maps ids E01…E18 (plus the figure reproductions) to runners. Grouped by
//! the subsystem they exercise:
//!
//! - [`games_exp`]: EF games — solver, pow2, lemmas, strategies (E01, E03,
//!   E06, E07, E11, E12);
//! - [`logic_exp`]: model checking — EF theorem cross-check, Prop 3.7,
//!   φ_fib, bounded transfer (E02, E04, E05, E16);
//! - [`words_exp`]: combinatorics on words — primitive-word lemmas,
//!   co-primitivity (E10, E13);
//! - [`fooling_exp`]: the Fooling Lemma pipeline (E08, E09, E14, E15);
//! - [`spanner_exp`]: reductions and closure (E17, E18).

pub mod fooling_exp;
pub mod games_exp;
pub mod logic_exp;
pub mod spanner_exp;
pub mod words_exp;

use crate::report::{Effort, ExperimentReport};

/// A registered experiment: (id, title, runner).
pub type Entry = (&'static str, &'static str, fn(Effort) -> ExperimentReport);

/// All experiments, in id order.
pub fn registry() -> Vec<Entry> {
    vec![
        (
            "E01",
            "Example 3.3: Spoiler wins 2 rounds on a^{2i} vs a^{2i-1}",
            games_exp::e01_even_odd,
        ),
        (
            "E02",
            "Theorem 3.5: EF games ⟺ rank-k sentences (cross-check)",
            logic_exp::e02_ef_theorem,
        ),
        (
            "E03",
            "Lemma 3.6: unary ≡_k witnesses and class tables",
            games_exp::e03_pow2,
        ),
        (
            "E04",
            "Prop 3.7: ≡_k is not a congruence (qr-5 formula)",
            logic_exp::e04_not_congruence,
        ),
        (
            "E05",
            "Prop 4.1: L_fib is FC-expressible",
            logic_exp::e05_fib,
        ),
        (
            "E06",
            "Lemmas 4.2/4.3: forced responses and prefix/suffix preservation",
            games_exp::e06_structural_lemmas,
        ),
        (
            "E07",
            "Lemma 4.4: Pseudo-Congruence strategy composition",
            games_exp::e07_pseudo_congruence,
        ),
        (
            "E08",
            "Example 4.5: aⁿbⁿ ∉ L(FC) via fooling pairs",
            fooling_exp::e08_anbn,
        ),
        ("E09", "Prop 4.6: aⁿ(ba)ⁿ ∉ L(FC)", fooling_exp::e09_a_ba),
        (
            "E10",
            "Lemmas 4.7/4.8/D.1–D.4: primitive-word toolbox",
            words_exp::e10_primitive_toolbox,
        ),
        (
            "E11",
            "Lemma 4.9: Primitive Power strategy",
            games_exp::e11_primitive_power,
        ),
        (
            "E12",
            "Prop 4.10: every word is ≡_k-pumpable",
            games_exp::e12_all_words,
        ),
        (
            "E13",
            "Lemmas 4.11/4.12: periodicity and co-primitivity",
            words_exp::e13_coprimitivity,
        ),
        (
            "E14",
            "Lemma 4.13/Prop 4.14: the Fooling Lemma driver",
            fooling_exp::e14_fooling_driver,
        ),
        (
            "E15",
            "Lemma 4.15: L1…L6 are not FC languages",
            fooling_exp::e15_l1_to_l6,
        ),
        (
            "E16",
            "Lemma 5.3: bounded regular constraints eliminate into FC",
            logic_exp::e16_bounded_transfer,
        ),
        (
            "E17",
            "Theorem 5.5: eight relations are not selectable",
            spanner_exp::e17_reductions,
        ),
        (
            "E18",
            "§6 closure: |w|_a = |w|_b via intersection with a*b*",
            spanner_exp::e18_closure,
        ),
        (
            "E19",
            "§7 extension: existential games and the EP fragment",
            games_exp::e19_existential,
        ),
        (
            "E20",
            "§7 extension: pebble games for finite-variable FC",
            games_exp::e20_pebble,
        ),
        (
            "E21",
            "§1 comparison: FO[EQ] positional logic and its games",
            logic_exp::e21_foeq,
        ),
        (
            "E23",
            "FP19 Lemma 5.5: simple regular expressions eliminate into FC",
            logic_exp::e23_simple_regex,
        ),
        (
            "E22",
            "Theorem 3.5, constructively: distinguishing-formula certificates",
            games_exp::e22_certificates,
        ),
        (
            "E24",
            "Hintikka class tables: rank-k resolution over word windows",
            games_exp::e24_class_tables,
        ),
        (
            "E26",
            "arXiv 2505.09772: FC-definability oracle across the E23 regex families",
            logic_exp::e26_definability,
        ),
        (
            "E27",
            "Succinct-backend scaling: plan-engine checks at |w| = 10⁴–10⁵",
            logic_exp::e27_long_words,
        ),
        (
            "F1-3",
            "Figures 1–3: strategy diagrams from live transcripts",
            games_exp::figures,
        ),
    ]
}
