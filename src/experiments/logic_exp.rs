//! Logic-side experiments: E02, E04, E05, E16, E23, E26, E27.

use crate::report::{Effort, ExperimentReport};
use fc_games::solver::EfSolver;
use fc_games::GamePair;
use fc_logic::eval::{holds, holds_naive, Assignment};
use fc_logic::library;
use fc_logic::plan::{EvalStats, Plan};
use fc_logic::{FactorStructure, Formula, Term};
use fc_reglang::bounded::BoundedExpr;
use fc_words::{fibonacci, Alphabet, Word};

fn v(name: &str) -> Term {
    Term::var(name)
}

/// A battery of sentences with known quantifier ranks, used to cross-check
/// Theorem 3.5.
fn sentence_battery() -> Vec<(Formula, usize)> {
    let mut out = Vec::new();
    // Rank 1: ∃x: x ≐ a·a ; ∃x: x ≐ a·b ; ∃x: x ≐ b·a ; ∃x ¬(x ≐ ε).
    for (y, z) in [(b'a', b'a'), (b'a', b'b'), (b'b', b'a'), (b'b', b'b')] {
        let f = Formula::exists(&["x"], Formula::eq_cat(v("x"), Term::Sym(y), Term::Sym(z)));
        out.push((f, 1));
    }
    out.push((
        Formula::exists(&["x"], Formula::not(Formula::eq(v("x"), Term::Epsilon))),
        1,
    ));
    // Rank 2: squares exist; every factor is a square of something; etc.
    out.push((
        Formula::exists(
            &["x", "y"],
            Formula::and([
                Formula::eq_cat(v("x"), v("y"), v("y")),
                Formula::not(Formula::eq(v("y"), Term::Epsilon)),
            ]),
        ),
        2,
    ));
    out.push((
        Formula::forall(
            &["x"],
            Formula::exists(&["y"], Formula::eq_cat(v("x"), v("y"), v("y"))),
        ),
        2,
    ));
    out.push((
        Formula::exists(
            &["x", "y"],
            Formula::and([
                Formula::eq_cat(v("x"), v("y"), Term::Sym(b'a')),
                Formula::eq_cat(v("x"), Term::Sym(b'b'), v("y")),
            ]),
        ),
        2,
    ));
    out
}

/// E02 — Theorem 3.5 cross-check: whenever the solver certifies
/// `w ≡_k v`, every battery sentence of rank ≤ k agrees on `w` and `v`
/// (and whenever a sentence of rank r disagrees, the solver distinguishes
/// at r).
pub fn e02_ef_theorem(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let max_len = match effort {
        Effort::Quick => 3,
        Effort::Full => 4,
    };
    let sigma = Alphabet::ab();
    let battery = sentence_battery();
    let words: Vec<Word> = sigma.words_up_to(max_len).collect();
    let mut checked = 0usize;
    let mut violations = 0usize;
    for (i, w) in words.iter().enumerate() {
        for u in words.iter().skip(i + 1) {
            let mut solver = EfSolver::new(GamePair::new(w.clone(), u.clone(), &sigma));
            for k in 0..=2u32 {
                let equiv = solver.equivalent(k);
                if !equiv {
                    continue;
                }
                let sw = FactorStructure::new(w.clone(), &sigma);
                let su = FactorStructure::new(u.clone(), &sigma);
                for (phi, rank) in &battery {
                    if *rank as u32 <= k {
                        checked += 1;
                        let (mw, mu) = (
                            holds(phi, &sw, &Assignment::new()),
                            holds(phi, &su, &Assignment::new()),
                        );
                        if mw != mu {
                            violations += 1;
                            rep.check(
                                false,
                                format!("{w} ≡_{k} {u} but sentence {phi} (rank {rank}) disagrees"),
                            );
                        }
                    }
                }
            }
        }
    }
    rep.check(
        violations == 0,
        format!(
            "EF theorem respected on {checked} (pair, sentence) combinations over Σ^≤{max_len}"
        ),
    );
    rep
}

/// E04 — Prop 3.7: the rank-5 sentence φ accepts `aᵖbaᵖ` and rejects
/// `a^q·b·aᵖ`, so `≡_k` cannot be a congruence at any `k ≥ 5`.
pub fn e04_not_congruence(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let phi = library::phi_vbv();
    rep.check(phi.qr() == 5, format!("qr(φ) = {} (paper: 5)", phi.qr()));
    let sigma = Alphabet::ab();
    let max_p = match effort {
        Effort::Quick => 4,
        Effort::Full => 6,
    };
    for p in 1..=max_p {
        for q in 1..=max_p {
            if p == q {
                continue;
            }
            let wp = Word::from("a")
                .pow(p)
                .concat(&Word::from("b"))
                .concat(&Word::from("a").pow(p));
            let wq = Word::from("a")
                .pow(q)
                .concat(&Word::from("b"))
                .concat(&Word::from("a").pow(p));
            let sp = FactorStructure::new(wp.clone(), &sigma);
            let sq = FactorStructure::new(wq.clone(), &sigma);
            let ok = holds(&phi, &sp, &Assignment::new()) && !holds(&phi, &sq, &Assignment::new());
            if !ok {
                rep.check(false, format!("φ failed to separate {wp} from {wq}"));
            }
        }
    }
    rep.check(
        true,
        format!("φ separates aᵖbaᵖ from a^q·b·aᵖ for all p ≠ q ≤ {max_p}"),
    );
    // The congruence failure, stated with the solver: a^12 ≡_1 a^14 and
    // b·a^12 ≡_1 b·a^12, yet a^12·b·a^12 ≢ a^14·b·a^12 at rank 5 (already
    // at lower ranks here).
    let mut s = EfSolver::of(
        &format!("{}b{}", "a".repeat(12), "a".repeat(12)),
        &format!("{}b{}", "a".repeat(14), "a".repeat(12)),
    );
    match s.distinguishing_rounds(2) {
        Some(k) => rep.check(
            true,
            format!("solver distinguishes the concatenations at rank {k}"),
        ),
        None => {
            rep.row("solver cannot distinguish within 2 rounds (formula needs rank 5)".to_string())
        }
    }
    rep
}

/// E05 — Prop 4.1: `L(φ_fib) = L_fib` — members accepted, mutants and a
/// whole window rejected; plus the guarded-vs-naive evaluator ablation.
pub fn e05_fib(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::abc();
    let phi = library::phi_fib();
    let max_n = match effort {
        Effort::Quick => 3,
        Effort::Full => 4,
    };
    // One plan for every φ_fib evaluation in this experiment.
    let plan = Plan::compile(&phi);
    let mut stats = EvalStats::default();
    for n in 0..=max_n {
        let member = fibonacci::l_fib_member(n);
        let st = FactorStructure::new(member.clone(), &sigma);
        let t = std::time::Instant::now();
        let ok = plan.eval_with_stats(&st, &Assignment::new(), &mut stats);
        rep.check(
            ok,
            format!(
                "accepts c·F₀·c⋯F_{n}·c (len {}) in {:?}",
                member.len(),
                t.elapsed()
            ),
        );
    }
    // Mutants.
    let good = fibonacci::l_fib_member(3);
    let mut rejected = 0;
    let mut total = 0;
    for i in 0..good.len() {
        let mut bad = good.bytes().to_vec();
        bad[i] = match bad[i] {
            b'a' => b'b',
            b'b' => b'c',
            _ => b'a',
        };
        if fibonacci::is_l_fib(&bad) {
            continue;
        }
        total += 1;
        let st = FactorStructure::new(Word::from_bytes(bad), &sigma);
        if !plan.eval_with_stats(&st, &Assignment::new(), &mut stats) {
            rejected += 1;
        }
    }
    rep.check(
        rejected == total,
        format!("rejects {rejected}/{total} single-symbol mutants of the n = 3 member"),
    );
    rep.row(format!(
        "evaluator stats (members + mutants): {}",
        stats.render()
    ));
    // Window equality — parallel sweep sharing one compiled plan.
    let window_len = match effort {
        Effort::Quick => 5,
        Effort::Full => 6,
    };
    let bad = fc_logic::language::first_language_disagreement_auto(&phi, &sigma, window_len, |w| {
        fibonacci::is_l_fib(w.bytes())
    });
    rep.check(
        bad.is_none(),
        format!("L(φ_fib) = L_fib on Σ^≤{window_len} (counterexample: {bad:?})"),
    );
    // Ablation: guarded vs naive on a small member.
    let member = fibonacci::l_fib_member(2);
    let st = FactorStructure::new(member.clone(), &sigma);
    let t = std::time::Instant::now();
    let g = holds(&phi, &st, &Assignment::new());
    let guarded_time = t.elapsed();
    let t = std::time::Instant::now();
    let n = holds_naive(&phi, &st, &Assignment::new());
    let naive_time = t.elapsed();
    rep.check(
        g == n,
        format!("guarded ({guarded_time:?}) and naive ({naive_time:?}) evaluators agree on the n = 2 member"),
    );
    rep
}

/// E16 — Lemma 5.3: bounded regular constraints eliminate into FC, exactly;
/// including the Claim C.1 defect (imprimitive `w*`) and its repair.
pub fn e16_bounded_transfer(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let window = match effort {
        Effort::Quick => 5,
        Effort::Full => 7,
    };
    let cases: Vec<(&str, BoundedExpr)> = vec![
        ("(ab)*", BoundedExpr::star("ab")),
        ("(aa)*", BoundedExpr::star("aa")),
        (
            "a*b*",
            BoundedExpr::Concat(vec![BoundedExpr::star("a"), BoundedExpr::star("b")]),
        ),
        (
            "a*(ba)*",
            BoundedExpr::Concat(vec![BoundedExpr::star("a"), BoundedExpr::star("ba")]),
        ),
        (
            "ab ∪ (aa)*b",
            BoundedExpr::Union(vec![
                BoundedExpr::word("ab"),
                BoundedExpr::Concat(vec![BoundedExpr::star("aa"), BoundedExpr::word("b")]),
            ]),
        ),
    ];
    for (name, expr) in &cases {
        let dfa = fc_reglang::Dfa::from_regex(&expr.to_regex(), b"ab");
        let phi = library::on_whole_word(|x| fc_logic::reg_to_fc::bounded_to_fc(x, expr));
        let bad = fc_logic::language::first_language_disagreement_auto(&phi, &sigma, window, |w| {
            dfa.accepts(w.bytes())
        });
        rep.check(
            bad.is_none(),
            format!("{name}: FC translation exact on Σ^≤{window} ({bad:?})"),
        );
    }
    // The Claim C.1 defect: the paper-literal φ_{(aa)*} accepts aaa.
    let lit = library::on_whole_word(|x| library::phi_star_word_paper_literal(x, b"aa"));
    let fixed = library::on_whole_word(|x| library::phi_star_word(x, b"aa"));
    let aaa = FactorStructure::of_str("aaa", &sigma);
    rep.check(
        holds(&lit, &aaa, &Assignment::new()),
        "paper-literal Claim C.1 formula wrongly accepts aaa ∈ (aa)* — the documented defect",
    );
    rep.check(
        !holds(&fixed, &aaa, &Assignment::new()),
        "repaired formula (primitive-root detour) rejects aaa",
    );
    // Boundedness decision sanity on the same cases.
    for (name, expr) in &cases {
        let dfa = fc_reglang::Dfa::from_regex(&expr.to_regex(), b"ab");
        rep.check(
            fc_reglang::bounded::is_bounded(&dfa),
            format!("{name} is decided bounded"),
        );
    }
    rep.check(
        !fc_reglang::bounded::is_bounded(&fc_reglang::Dfa::from_regex(
            &fc_reglang::Regex::parse("(a|b)*").unwrap(),
            b"ab",
        )),
        "Σ* is decided unbounded",
    );
    rep
}

/// E21 — §1 comparison: FO[EQ], the positional logic with built-in factor
/// equality that the Feferman–Vaught route uses.
pub fn e21_foeq(effort: Effort) -> ExperimentReport {
    use fc_logic::foeq::{contains_ab_sentence, foeq_equivalent, square_sentence, FoeqSolver};
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let window = match effort {
        Effort::Quick => 5,
        Effort::Full => 6,
    };
    // Shared languages, two logics.
    let foeq_square = square_sentence();
    let fc_square = library::phi_square();
    let fc_square_plan = Plan::compile(&fc_square);
    let mut disagreements = 0;
    for w in sigma.words_up_to(window) {
        let s = FactorStructure::new(w.clone(), &sigma);
        let fc_says = fc_square_plan.eval(&s, &Assignment::new());
        let expected = if w.is_empty() { false } else { fc_says };
        if foeq_square.models(&w) != expected {
            disagreements += 1;
        }
    }
    rep.check(
        disagreements == 0,
        format!("FO[EQ] and FC square sentences agree on Σ^≤{window} (mod the ε convention)"),
    );
    rep.check(
        sigma
            .words_up_to(window)
            .all(|w| contains_ab_sentence().models(&w) == fc_words::is_factor(b"ab", w.bytes())),
        "FO[EQ] contains-ab sentence matches the factor test",
    );
    // The FV-route observation: FO[EQ] games run on |w| positions, so the
    // a^p b^p vs a^q b^p scan is cheap; find a rank-1 pair and time it.
    let t = std::time::Instant::now();
    let mut found = None;
    'outer: for q in 2..=12usize {
        for p in 1..q {
            let wp = format!("{}{}", "a".repeat(p), "b".repeat(p));
            let wq = format!("{}{}", "a".repeat(q), "b".repeat(p));
            if foeq_equivalent(&wp, &wq, 1) {
                found = Some((p, q));
                break 'outer;
            }
        }
    }
    match found {
        Some((p, q)) => rep.check(
            true,
            format!(
                "aᵖbᵖ ≡^FO[EQ]₁ a^qbᵖ for (p,q) = ({p},{q}) found in {:?} on |w| positions",
                t.elapsed()
            ),
        ),
        None => rep.check(false, "no rank-1 FO[EQ] pair found"),
    }
    // Reflexivity / basic laws of the positional solver.
    rep.check(
        FoeqSolver::new("abab", "abab").equivalent(2) && !foeq_equivalent("ab", "ba", 2),
        "FO[EQ] game solver sanity (reflexive; ab ≢ ba)",
    );
    rep
}

/// E23 — simple regular expressions (FP19 Lemma 5.5): the second
/// FC-absorbable constraint class, translated and checked exactly.
pub fn e23_simple_regex(effort: Effort) -> ExperimentReport {
    use fc_logic::reg_to_fc::simple_to_fc;
    use fc_reglang::simple::{SimplePart, SimpleRegex};
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let window = match effort {
        Effort::Quick => 6,
        Effort::Full => 7,
    };
    let patterns = vec![
        ("Σ*·ab·Σ*", SimpleRegex::contains("ab")),
        ("ab·Σ*", SimpleRegex::starts_with("ab")),
        ("Σ*·ba", SimpleRegex::ends_with("ba")),
        (
            "a·Σ*·bb·Σ*·a",
            SimpleRegex::from_parts([
                SimplePart::Word(fc_words::Word::from("a")),
                SimplePart::Gap,
                SimplePart::Word(fc_words::Word::from("bb")),
                SimplePart::Gap,
                SimplePart::Word(fc_words::Word::from("a")),
            ]),
        ),
    ];
    for (name, p) in &patterns {
        let phi = library::on_whole_word(|x| simple_to_fc(x, p));
        let bad = fc_logic::language::first_language_disagreement_auto(&phi, &sigma, window, |w| {
            p.contains_word(w.bytes())
        });
        rep.check(
            bad.is_none(),
            format!("{name}: FC translation exact on Σ^≤{window} ({bad:?})"),
        );
    }
    // Incomparability with the bounded class (why §7 lists it separately).
    let contains = SimpleRegex::contains("ab");
    let dfa = fc_reglang::Dfa::from_regex(&contains.to_regex(b"ab"), b"ab");
    rep.check(
        !fc_reglang::bounded::is_bounded(&dfa),
        "Σ*·ab·Σ* is simple but UNBOUNDED — the two FC-absorbable classes are incomparable",
    );
    rep
}

/// E26 — arXiv 2505.09772: the FC-definability oracle, run across the
/// E23 regex families. Bounded and simple languages resolve Definable
/// through their dedicated routes; the incomparability of the two
/// classes (E23) is re-confirmed *via the oracle's witnesses*; modular
/// counting languages get validated obstruction certificates; and the
/// documented frontier case stays `Inconclusive` — the oracle never
/// guesses.
pub fn e26_definability(effort: Effort) -> ExperimentReport {
    use fc_logic::reg_to_fc::definable_to_fc;
    use fc_reglang::definable::{fc_definable_regex, DefinabilityBudget, FcDefinability};
    use fc_reglang::{bounded, simple::SimpleRegex, Dfa, Regex};
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let budget = DefinabilityBudget::default();
    let window = match effort {
        Effort::Quick => 5,
        Effort::Full => 7,
    };

    // Definable families: bounded, simple, and mixed (neither).
    let definable = [
        ("(ab)*", "bounded"),
        ("a*b*", "bounded"),
        ("(aa)*", "bounded"),
        ("(a|b)*ab(a|b)*", "simple"),
        ("(a|b)*ab", "simple"),
        ("(aa)*b(a|b)*", "mixed"),
        ("b*a(ab)*", "mixed"),
    ];
    for (pattern, family) in definable {
        let re = Regex::parse(pattern).expect("corpus regex");
        let dfa = Dfa::from_regex(&re, b"ab");
        match fc_definable_regex(&re, b"ab", &budget) {
            FcDefinability::Definable(expr) => {
                let phi = library::on_whole_word(|x| definable_to_fc(x, &expr, b"ab"));
                let bad = fc_logic::language::first_language_disagreement_auto(
                    &phi,
                    &sigma,
                    window,
                    |w| dfa.accepts(w.bytes()),
                );
                rep.check(
                    bad.is_none(),
                    format!("{pattern} ({family}): DEFINABLE, witness {expr} exact on Σ^≤{window}"),
                );
            }
            other => rep.check(false, format!("{pattern}: expected witness, got {other:?}")),
        }
    }

    // E23 incomparability, now certified by the oracle's own witnesses:
    // Σ*abΣ* is definable-but-unbounded, (aa)* is bounded-but-not-simple.
    let gap = Regex::parse("(a|b)*ab(a|b)*").unwrap();
    let gap_dfa = Dfa::from_regex(&gap, b"ab");
    let gap_def = matches!(
        fc_definable_regex(&gap, b"ab", &budget),
        FcDefinability::Definable(_)
    );
    rep.check(
        gap_def && !bounded::is_bounded(&gap_dfa),
        "Σ*·ab·Σ* is FC-definable yet UNBOUNDED (simple route carries it)",
    );
    let even = Regex::parse("(aa)*").unwrap();
    let even_expr = match fc_definable_regex(&even, b"ab", &budget) {
        FcDefinability::Definable(e) => Some(e),
        _ => None,
    };
    rep.check(
        even_expr
            .as_ref()
            .is_some_and(|e| e.as_bounded().is_some() && e.as_simple(b"ab").is_none()),
        "(aa)* is FC-definable via the bounded route but NOT simple — incomparability confirmed",
    );
    let _ = SimpleRegex::contains("ab"); // the E23 anchor this refines

    // Obstruction certificates: modular counting is provably outside FC.
    for pattern in ["(b|ab*a)*", "((a|b)(a|b))*", "(aa|bb)*"] {
        let re = Regex::parse(pattern).expect("corpus regex");
        let dfa = Dfa::from_regex(&re, b"ab");
        match fc_definable_regex(&re, b"ab", &budget) {
            FcDefinability::NotDefinable(ob) => {
                let family_ok = ob
                    .separating_family(3)
                    .into_iter()
                    .all(|(w, claimed)| dfa.accepts(w.bytes()) == claimed);
                rep.check(
                    ob.validate(&dfa) && family_ok,
                    format!("{pattern}: NOT definable — {}", ob.describe()),
                );
            }
            other => rep.check(
                false,
                format!("{pattern}: expected obstruction, got {other:?}"),
            ),
        }
    }

    // The frontier: (ab|ba)* sits outside both the witness class and the
    // permutation-obstruction criterion. The oracle must say so.
    let frontier = Regex::parse("(ab|ba)*").unwrap();
    rep.check(
        matches!(
            fc_definable_regex(&frontier, b"ab", &budget),
            FcDefinability::Inconclusive(_)
        ),
        "(ab|ba)* is INCONCLUSIVE — the oracle never guesses at the frontier",
    );
    rep
}

/// Peak resident-set size (VmHWM) of this process in bytes, read from
/// `/proc/self/status` — `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// E27 — succinct-backend scaling: plan-engine model checking on words of
/// length 10⁴ (Quick) and 10⁵ (Full), where the dense Θ(m²) concat table
/// extrapolates to gigabytes. For each length the suffix-automaton backend
/// is built and measured (build time, bytes per factor, dense-extrapolation
/// ratio, peak RSS), then square equations are decided through the
/// compiled plan: with both sides bound each verdict is a constant number
/// of automaton walks, so it works unchanged at 10⁵; the guarded witness
/// search `∃y: x ≐ y·y` enumerates the Θ(|w|) splits of the bound `x`
/// with Θ(|w|)-byte resolution each, so that leg stops at 10³ in Quick
/// (it runs in debug under tier-1) and 10⁴ in Full.
pub fn e27_long_words(effort: Effort) -> ExperimentReport {
    use fc_logic::BackendKind;
    use std::time::Instant;

    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let square = Formula::eq_cat(v("x"), v("y"), v("y"));
    let square_plan = Plan::compile(&square);
    let witness_plan = Plan::compile(&Formula::exists(&["y"], square.clone()));

    // Storage sweep + bound-assignment checks (linear cost at any length).
    let lens: &[usize] = match effort {
        Effort::Quick => &[10_000],
        Effort::Full => &[10_000, 100_000],
    };
    for &n in lens {
        let k = n / 2; // w = (ab)^k, |w| = n, k even for both sweep lengths
        let w = Word::from("ab").pow(k);
        let t = Instant::now();
        let s = FactorStructure::with_backend(w, &sigma, BackendKind::Succinct);
        let build = t.elapsed();
        let m = s.universe_len();
        let mem = s.memory_bytes();
        let bpf = mem as f64 / m as f64;
        // The dense backend's concat table alone would hold m² FactorIds.
        let dense_table = (m as f64) * (m as f64) * 4.0;
        let ratio = dense_table / mem as f64;
        rep.row(format!(
            "|w| = {n}: built in {build:.1?} — {m} factors, {mem} B ({bpf:.1} B/factor); \
             the dense concat table alone would be {:.1} GB ({ratio:.0}× more)",
            dense_table / 1e9,
        ));
        rep.check(
            bpf < 64.0,
            format!("|w| = {n}: succinct storage ≤ 64 B/factor"),
        );
        rep.check(
            ratio >= 50.0,
            format!("|w| = {n}: ≥ 50× below the dense extrapolation"),
        );

        // x ≐ y·y with both sides bound: true for y = (ab)^{k/2}, false one
        // (ab)-period off.
        let x = s.full_word_id();
        let good = s.id_of(Word::from("ab").pow(k / 2).bytes()).expect("half");
        let off = s
            .id_of(Word::from("ab").pow(k / 2 - 1).bytes())
            .expect("off-by-one");
        let mut asg = Assignment::new();
        asg.insert("x".into(), x);
        asg.insert("y".into(), good);
        let t = Instant::now();
        let yes = square_plan.eval(&s, &asg);
        asg.insert("y".into(), off);
        let no = square_plan.eval(&s, &asg);
        rep.check(
            yes && !no,
            format!(
                "|w| = {n}: plan decides w ≐ y·y for y = (ab)^{} (true) / (ab)^{} (false) in {:.1?}",
                k / 2,
                k / 2 - 1,
                t.elapsed()
            ),
        );
    }

    // Guarded witness search ∃y: x ≐ y·y — (ab)^k is a square iff k is
    // even (odd k forces an `aa` at the junction of any candidate root).
    let wn = match effort {
        Effort::Quick => 1_000,
        Effort::Full => 10_000,
    };
    for (k, expect) in [(wn / 2, true), (wn / 2 + 1, false)] {
        let w = Word::from("ab").pow(k);
        let s = FactorStructure::with_backend(w, &sigma, BackendKind::Succinct);
        let mut asg = Assignment::new();
        asg.insert("x".into(), s.full_word_id());
        let mut stats = EvalStats::default();
        let t = Instant::now();
        let got = witness_plan.eval_with_stats(&s, &asg, &mut stats);
        rep.check(
            got == expect,
            format!(
                "∃y: x ≐ y·y on x = (ab)^{k} (|x| = {}): {got} in {:.1?} ({} guard hits)",
                2 * k,
                t.elapsed(),
                stats.guard_hits
            ),
        );
    }

    match peak_rss_bytes() {
        Some(rss) => rep.row(format!(
            "peak RSS (VmHWM) after the sweep: {:.1} MB process-wide",
            rss as f64 / 1e6
        )),
        None => rep.row("peak RSS unavailable (no /proc/self/status)"),
    }
    rep
}
