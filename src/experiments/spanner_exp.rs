//! Spanner-side experiments: E17 (Theorem 5.5 reductions) and E18 (§6
//! closure).

use crate::report::{Effort, ExperimentReport};
use fc_relations::{closure, reductions};
use fc_words::Alphabet;

/// E17 — Theorem 5.5: each ζ^R reduction spanner defines its target
/// bounded language exactly (window check), stays inside the bounding
/// product, and genuinely uses relation selection.
pub fn e17_reductions(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let sigma = Alphabet::ab();
    let window = match effort {
        Effort::Quick => 7,
        Effort::Full => 9,
    };
    for case in reductions::all_reductions() {
        let uses = case.uses_relation_selection();
        let lang_ok = case.check_window(&sigma, window).is_none();
        let bounded_ok = case.check_bounded(&sigma, window).is_none();
        rep.check(
            uses && lang_ok && bounded_ok,
            format!(
                "ζ^{}: L(ψ) = {} on Σ^≤{window} (uses ζ^R = {uses}, bounded = {bounded_ok})",
                case.relation, case.language
            ),
        );
    }
    rep.row(
        "⇒ were any relation selectable, its Lᵢ would be an FC[REG] language; Lemma 5.3 + E15's \
         fooling pairs refute that"
            .to_string(),
    );
    rep
}

/// E18 — §6: `{w : |w|ₐ = |w|_b}` is excluded from FC[REG] by closure
/// under intersection with the bounded regular language `a*b*`.
pub fn e18_closure(effort: Effort) -> ExperimentReport {
    let mut rep = ExperimentReport::new();
    let window = match effort {
        Effort::Quick => 8,
        Effort::Full => 10,
    };
    rep.check(
        closure::check_intersection_identity(window).is_none(),
        format!("L ∩ a*b* = {{aⁿbⁿ}} verified on Σ^≤{window}"),
    );
    rep.check(
        closure::intersection_target_is_bounded(),
        "a*b* is decided bounded (Lemma 5.3 applies after intersecting)",
    );
    rep.check(
        closure::refute_small_bounding_products(2, 2),
        "no 2-factor product of words of length ≤ 2 bounds L itself (the detour is necessary)",
    );
    if effort == Effort::Full {
        rep.check(
            closure::refute_small_bounding_products(3, 2),
            "…nor any 3-factor product of short words",
        );
    }
    rep
}
