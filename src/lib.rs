//! # fc-suite — umbrella crate for the FC / EF-games reproduction
//!
//! Re-exports the workspace crates and hosts the **experiment registry**:
//! one runner per experiment of DESIGN.md's index (E01–E18), each
//! producing a serializable [`report::ExperimentReport`]. The
//! `inexpressibility_report` example executes the registry end to end and
//! regenerates the data recorded in EXPERIMENTS.md.

pub use fc_games as games;
pub use fc_logic as logic;
pub use fc_reglang as reglang;
pub use fc_relations as relations;
pub use fc_serve as serve;
pub use fc_spanners as spanners;
pub use fc_words as words;

// The JSON layer lives with the line-protocol server now; keep the old
// `fc_suite::json` path working for the report writer and the CLI tests.
pub use fc_serve::json;

pub mod experiments;
pub mod report;

pub use report::{Effort, ExperimentReport, Status};

/// Runs every registered experiment at the given effort level.
pub fn run_all(effort: Effort) -> Vec<ExperimentReport> {
    experiments::registry()
        .into_iter()
        .map(|(id, title, runner)| {
            let start = std::time::Instant::now();
            let mut rep = runner(effort);
            rep.id = id.to_string();
            rep.title = title.to_string();
            rep.elapsed_ms = start.elapsed().as_millis() as u64;
            rep
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let reg = experiments::registry();
        assert!(
            reg.len() >= 18,
            "expected ≥ 18 experiments, got {}",
            reg.len()
        );
        // ids unique
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
