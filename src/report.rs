//! Experiment report types — the structured output the harness serializes
//! so EXPERIMENTS.md rows are regenerable and diffable.

use crate::json::{self, Value};

/// How much compute an experiment run may spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// CI-sized: seconds per experiment.
    Quick,
    /// Full: what EXPERIMENTS.md records (minutes overall).
    Full,
}

/// Outcome of an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Every check of the experiment held.
    Pass,
    /// At least one check failed — would falsify the paper (or expose a
    /// harness bug); details in the rows.
    Fail,
    /// Deliberately reduced scope at this effort level.
    Partial,
}

/// One experiment's structured result.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment id (E01…E18, F1…).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Outcome.
    pub status: Status,
    /// Table rows / findings, already formatted.
    pub rows: Vec<String>,
    /// Wall-clock of the run (filled by the registry driver).
    pub elapsed_ms: u64,
}

impl ExperimentReport {
    /// A fresh report (id/title filled by the registry driver).
    pub fn new() -> ExperimentReport {
        ExperimentReport {
            id: String::new(),
            title: String::new(),
            status: Status::Pass,
            rows: Vec::new(),
            elapsed_ms: 0,
        }
    }

    /// Appends a row.
    pub fn row(&mut self, text: impl Into<String>) {
        self.rows.push(text.into());
    }

    /// Appends a check row, downgrading the status on failure.
    pub fn check(&mut self, ok: bool, text: impl Into<String>) {
        let mark = if ok { "✓" } else { "✗" };
        self.rows.push(format!("{mark} {}", text.into()));
        if !ok {
            self.status = Status::Fail;
        }
    }

    /// Marks the report as partial (reduced scope).
    pub fn partial(&mut self, why: impl Into<String>) {
        if self.status == Status::Pass {
            self.status = Status::Partial;
        }
        self.rows.push(format!("(partial: {})", why.into()));
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> String {
        Value::object([
            ("id", Value::String(self.id.clone())),
            ("title", Value::String(self.title.clone())),
            ("status", Value::String(format!("{:?}", self.status))),
            (
                "rows",
                Value::Array(self.rows.iter().map(|r| Value::String(r.clone())).collect()),
            ),
            ("elapsed_ms", Value::Number(self.elapsed_ms as f64)),
        ])
        .to_string()
    }

    /// Parses a report serialized by [`ExperimentReport::to_json`].
    ///
    /// # Errors
    /// Reports malformed JSON or missing/ill-typed fields.
    pub fn from_json(text: &str) -> Result<ExperimentReport, String> {
        let v = json::parse(text)?;
        let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field {name}"));
        let status = match field("status")?.as_str() {
            Some("Pass") => Status::Pass,
            Some("Fail") => Status::Fail,
            Some("Partial") => Status::Partial,
            other => return Err(format!("bad status {other:?}")),
        };
        Ok(ExperimentReport {
            id: field("id")?
                .as_str()
                .ok_or("id must be a string")?
                .to_string(),
            title: field("title")?
                .as_str()
                .ok_or("title must be a string")?
                .to_string(),
            status,
            rows: field("rows")?
                .as_array()
                .ok_or("rows must be an array")?
                .iter()
                .map(|r| {
                    r.as_str()
                        .map(str::to_string)
                        .ok_or("rows must hold strings")
                })
                .collect::<Result<Vec<_>, _>>()?,
            elapsed_ms: field("elapsed_ms")?
                .as_f64()
                .ok_or("elapsed_ms must be a number")? as u64,
        })
    }

    /// Renders as plain text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} [{:?}] ({} ms)\n",
            self.id, self.title, self.status, self.elapsed_ms
        );
        for r in &self.rows {
            out.push_str("   ");
            out.push_str(r);
            out.push('\n');
        }
        out
    }
}

impl Default for ExperimentReport {
    fn default() -> Self {
        ExperimentReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_downgrades_status() {
        let mut r = ExperimentReport::new();
        r.check(true, "first");
        assert_eq!(r.status, Status::Pass);
        r.check(false, "second");
        assert_eq!(r.status, Status::Fail);
        assert!(r.render().contains("✗ second"));
    }

    #[test]
    fn partial_does_not_mask_failure() {
        let mut r = ExperimentReport::new();
        r.check(false, "broken");
        r.partial("scope");
        assert_eq!(r.status, Status::Fail);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut r = ExperimentReport::new();
        r.id = "E01".into();
        r.check(true, "ok");
        let json = r.to_json();
        let back = ExperimentReport::from_json(&json).unwrap();
        assert_eq!(back.id, "E01");
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.status, Status::Pass);
    }
}
