//! Experiment report types — the structured output the harness serializes
//! so EXPERIMENTS.md rows are regenerable and diffable.

use serde::{Deserialize, Serialize};

/// How much compute an experiment run may spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// CI-sized: seconds per experiment.
    Quick,
    /// Full: what EXPERIMENTS.md records (minutes overall).
    Full,
}

/// Outcome of an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Every check of the experiment held.
    Pass,
    /// At least one check failed — would falsify the paper (or expose a
    /// harness bug); details in the rows.
    Fail,
    /// Deliberately reduced scope at this effort level.
    Partial,
}

/// One experiment's structured result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (E01…E18, F1…).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Outcome.
    pub status: Status,
    /// Table rows / findings, already formatted.
    pub rows: Vec<String>,
    /// Wall-clock of the run (filled by the registry driver).
    pub elapsed_ms: u64,
}

impl ExperimentReport {
    /// A fresh report (id/title filled by the registry driver).
    pub fn new() -> ExperimentReport {
        ExperimentReport {
            id: String::new(),
            title: String::new(),
            status: Status::Pass,
            rows: Vec::new(),
            elapsed_ms: 0,
        }
    }

    /// Appends a row.
    pub fn row(&mut self, text: impl Into<String>) {
        self.rows.push(text.into());
    }

    /// Appends a check row, downgrading the status on failure.
    pub fn check(&mut self, ok: bool, text: impl Into<String>) {
        let mark = if ok { "✓" } else { "✗" };
        self.rows.push(format!("{mark} {}", text.into()));
        if !ok {
            self.status = Status::Fail;
        }
    }

    /// Marks the report as partial (reduced scope).
    pub fn partial(&mut self, why: impl Into<String>) {
        if self.status == Status::Pass {
            self.status = Status::Partial;
        }
        self.rows.push(format!("(partial: {})", why.into()));
    }

    /// Renders as plain text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} [{:?}] ({} ms)\n",
            self.id, self.title, self.status, self.elapsed_ms
        );
        for r in &self.rows {
            out.push_str("   ");
            out.push_str(r);
            out.push('\n');
        }
        out
    }
}

impl Default for ExperimentReport {
    fn default() -> Self {
        ExperimentReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_downgrades_status() {
        let mut r = ExperimentReport::new();
        r.check(true, "first");
        assert_eq!(r.status, Status::Pass);
        r.check(false, "second");
        assert_eq!(r.status, Status::Fail);
        assert!(r.render().contains("✗ second"));
    }

    #[test]
    fn partial_does_not_mask_failure() {
        let mut r = ExperimentReport::new();
        r.check(false, "broken");
        r.partial("scope");
        assert_eq!(r.status, Status::Fail);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut r = ExperimentReport::new();
        r.id = "E01".into();
        r.check(true, "ok");
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "E01");
        assert_eq!(back.rows.len(), 1);
    }
}
