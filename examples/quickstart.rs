//! Quickstart: factor structures, FC model checking, and an EF game.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fc_suite::games::solver::EfSolver;
use fc_suite::logic::{eval, library, FactorStructure, Formula, Term};
use fc_suite::words::{Alphabet, Word};

fn main() {
    // 1. A word and its factor structure 𝔄_w.
    let w = Word::from("abaab");
    let structure = FactorStructure::new(w.clone(), &Alphabet::ab());
    println!("word w = {w}");
    println!(
        "|Facs(w)| = {} distinct factors (universe incl. ε, excl. ⊥)",
        structure.universe_len()
    );

    // 2. Model checking: the intro's cube-freeness sentence.
    let phi = library::phi_cube_free();
    println!("\nφ (no uuu factor) on some words:");
    for cand in ["abaab", "aaa", "abababx"] {
        let cand = &cand.replace('x', "");
        let s = FactorStructure::of_str(cand, &Alphabet::ab());
        println!("  {:8} ⊨ φ ? {}", cand, phi.models(&s));
    }

    // 3. A formula with free variables: R_copy(x, y) = (x ≐ y·y).
    let copy = library::r_copy("x", "y");
    let sols = eval::satisfying_assignments(&copy, &structure);
    println!("\n⟦x ≐ y·y⟧(abaab) has {} assignments:", sols.len());
    for m in &sols {
        let pretty: Vec<String> = m
            .iter()
            .map(|(var, id)| format!("{var} ↦ {}", structure.render(*id)))
            .collect();
        println!("  {{{}}}", pretty.join(", "));
    }

    // 4. An Ehrenfeucht-Fraïssé game: a⁴ vs a³ (paper Example 3.3).
    let mut solver = EfSolver::of("aaaa", "aaa");
    println!("\nEF games on a⁴ vs a³:");
    for k in 0..=2 {
        println!("  a⁴ ≡_{k} a³ ? {}", solver.equivalent(k));
    }
    if let Some(line) = solver.spoiler_winning_line(2) {
        println!("  Spoiler's winning line ({} moves):", line.len());
        for (i, mv) in line.iter().enumerate() {
            let side = match mv.side {
                fc_suite::games::Side::A => "A",
                fc_suite::games::Side::B => "B",
            };
            let word = match mv.side {
                fc_suite::games::Side::A => solver.game().a.render(mv.element),
                fc_suite::games::Side::B => solver.game().b.render(mv.element),
            };
            println!("    round {}: pick {side}:{word}", i + 1);
        }
    }

    // 5. And a positive equivalence: the minimal rank-2 unary pair.
    let mut solver = EfSolver::of(&"a".repeat(12), &"a".repeat(14));
    println!(
        "\na¹² ≡₂ a¹⁴ ? {} (the minimal rank-2 pair, experiment E03)",
        solver.equivalent(2)
    );

    // 6. FC can express surprising languages: the Fibonacci chain L_fib.
    let phi_fib = library::phi_fib();
    let member = fc_suite::words::fibonacci::l_fib_member(3);
    let s = FactorStructure::new(member.clone(), &Alphabet::abc());
    println!("\nφ_fib accepts {member} ? {}", phi_fib.models(&s));

    // 7. …but not aⁿbⁿ: a machine-checked fooling pair.
    let inst = fc_suite::games::fooling::FoolingInstance::new("", "a", "", "b", "", |p| p)
        .expect("a, b are co-primitive");
    if let Some(pair) = inst.fooling_pair(1, 10) {
        println!(
            "\nfooling pair at rank 1: {} ∈ aⁿbⁿ  ≡₁  {} ∉ aⁿbⁿ",
            pair.inside, pair.outside
        );
        println!("(no FC sentence of quantifier rank ≤ 1 defines aⁿbⁿ)");
    }

    // 8. Sentences as languages.
    let square = library::phi_square();
    let window = fc_suite::logic::language::language_window(&square, &Alphabet::ab(), 4);
    let names: Vec<String> = window.iter().map(|w| w.to_string()).collect();
    println!("\nL(φ_ww) ∩ Σ^≤4 = {{{}}}", names.join(", "));

    let _ = Formula::eq(Term::var("x"), Term::Epsilon); // API surface demo
    println!("\nquickstart done.");
}
