//! Generate and verify fooling pairs for the paper's languages.
//!
//! For each language L of Lemma 4.15 (plus aⁿbⁿ), searches for a pair
//! `(w ∈ L, v ∉ L)` with `w ≡_k v`, confirms it with the exact EF solver,
//! and prints the witnesses. Each row is a machine-checked proof that no
//! FC sentence of quantifier rank ≤ k defines L.
//!
//! ```text
//! cargo run --release --example fooling_pairs [max_k] [exponent_limit]
//! ```

use fc_suite::relations::languages;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_k: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let limit: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("fooling pairs (ranks 1..={max_k}, exponents ≤ {limit})\n");
    println!(
        "{:<6} {:<3} {:<28} {:<28} exponents",
        "lang", "k", "inside (∈ L)", "outside (∉ L)"
    );
    for lang in languages::catalogue() {
        for k in 1..=max_k {
            let t = std::time::Instant::now();
            match lang.fooling_pair(k, limit) {
                Some(pair) => {
                    println!(
                        "{:<6} {:<3} {:<28} {:<28} {:?}  [{:?}]",
                        lang.name,
                        k,
                        pair.inside.to_string(),
                        pair.outside.to_string(),
                        pair.exponents,
                        t.elapsed()
                    );
                }
                None => {
                    println!(
                        "{:<6} {:<3} (no pair within exponent {limit} — raise the limit)",
                        lang.name, k
                    );
                }
            }
        }
    }

    println!("\nEvery printed row is solver-confirmed: inside ≡_k outside, so no");
    println!("rank-k FC sentence separates them — yet exactly one of the two is in L.");
}
