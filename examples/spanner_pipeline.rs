//! An information-extraction pipeline with document spanners.
//!
//! Mirrors the paper's §1 story: regex formulas extract span relations,
//! the algebra combines them, ζ= does text-equality joins, difference
//! upgrades to generalized core spanners, and ζ^R shows what *cannot* be
//! had without extending the algebra.
//!
//! ```text
//! cargo run --release --example spanner_pipeline
//! ```

use fc_suite::spanners::regex_formula::RegexFormula;
use fc_suite::spanners::spanner::{Spanner, SpannerClass};
use std::rc::Rc;

fn main() {
    let doc = b"aa bab aa abba bab aa";
    println!("document: {:?}\n", String::from_utf8_lossy(doc));

    // 1. Extractor: all occurrences of "aa" (the paper's misspelling idiom).
    let occurrences = Spanner::regex(RegexFormula::extractor(RegexFormula::capture(
        "x",
        RegexFormula::pattern("aa"),
    )));
    let rel = occurrences.evaluate(doc);
    println!("γ₁(x) = Σ*·x{{aa}}·Σ* extracts {} spans:", rel.len());
    print!("{}", rel.render(doc));

    // 2. A second extractor for "bab".
    let second = Spanner::regex(RegexFormula::extractor(RegexFormula::capture(
        "y",
        RegexFormula::pattern("bab"),
    )));

    // 3. Join: all (x, y) pairs — regular spanners are closed under ⋈.
    let joined = Rc::new(Spanner::Join(occurrences.clone(), second.clone()));
    println!(
        "\nγ₁ ⋈ γ₂ has {} tuples (class: {:?})",
        joined.evaluate(doc).len(),
        joined.class()
    );

    // 4. Equality selection: pairs of *distinct positions with equal text*.
    let both = Spanner::regex(RegexFormula::extractor(RegexFormula::cat([
        RegexFormula::capture("x", RegexFormula::pattern("(a|b)(a|b)")),
        RegexFormula::any_star(),
        RegexFormula::capture("y", RegexFormula::pattern("(a|b)(a|b)")),
    ])));
    let equal_pairs = Spanner::eq_select("x", "y", both.clone());
    println!(
        "\nζ=_{{x,y}} over two-letter spans: {} equal-content pairs (class: {:?})",
        equal_pairs.evaluate(doc).len(),
        equal_pairs.class()
    );

    // 5. Difference: pairs with *different* content — generalized core.
    let different = Rc::new(Spanner::Difference(both.clone(), equal_pairs.clone()));
    println!(
        "difference (≠ content): {} tuples (class: {:?})",
        different.evaluate(doc).len(),
        different.class()
    );

    // 6. What the algebra cannot do: length-equality selection ζ^len.
    //    (Freydenberger–Peterfreund Thm 5.14, recalled in the paper's §1;
    //    our Theorem 5.5 reductions add eight more relations.)
    let split = Spanner::regex(RegexFormula::cat([
        RegexFormula::capture("x", RegexFormula::any_star()),
        RegexFormula::capture("y", RegexFormula::any_star()),
    ]));
    let len_eq = Spanner::rel_select(&["x", "y"], "len", |c| c[0].len() == c[1].len(), split);
    println!(
        "\nζ^len over all 2-splits: class {:?} — provably NOT expressible as a \
         generalized core spanner",
        len_eq.class()
    );
    assert_eq!(len_eq.class(), SpannerClass::Extended);
    let halves = len_eq.evaluate(b"abba");
    println!("on \"abba\" it selects {} tuple(s):", halves.len());
    print!("{}", halves.render(b"abba"));

    // 7. The Theorem 5.5 reductions, live.
    println!("\nTheorem 5.5 reduction spanners (Boolean languages):");
    for case in fc_suite::relations::reductions::all_reductions() {
        let sample = match case.language {
            "L1" => &b"aababa"[..],
            "L2" => b"ababa",
            "L3" => b"babb",
            "L4" => b"baabb",
            "L5" => b"abaabbbbaaba",
            "L6 (n \u{2265} 1)" => b"abab",
            _ => b"aabb",
        };
        println!(
            "  ζ^{:8} → {:12}  accepts {:?} = {}",
            case.relation,
            case.language,
            String::from_utf8_lossy(sample),
            case.spanner.accepts(sample)
        );
    }
}
