//! Unary FC as arithmetic: class tables, semilinear fits, and the
//! Lemma 3.6 story end to end.
//!
//! Over Σ = {a}, the factor structure of `aⁿ` is the initial segment
//! [0, n] of ℕ with (partial) addition — so rank-k EF games on unary words
//! are addition games, and the ≡_k classes are semilinear sets. This
//! example prints the measured tables and walks the paper's refutation of
//! `L_pow = {a^{2ⁿ}}`.
//!
//! ```text
//! cargo run --release --example unary_arithmetic [max_exponent]
//! ```

use fc_suite::games::pow2;
use fc_suite::words::semilinear::{is_power_of_two, SemilinearSet};

fn main() {
    let limit: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    println!("=== ≡_k classes of a^0 .. a^{limit} (exact EF solver) ===\n");
    for k in 0..=2u32 {
        let t = std::time::Instant::now();
        let classes = pow2::unary_classes(k, limit);
        println!("k = {k}  ({} classes, {:?}):", classes.len(), t.elapsed());
        println!("{}\n", pow2::render_classes(&classes));
    }

    println!("=== minimal Lemma 3.6 witnesses ===");
    for k in 0..=2u32 {
        match pow2::minimal_unary_pair(k, limit.max(14)) {
            Some((p, q)) => println!("  k = {k}: a^{p} ≡_{k} a^{q}"),
            None => println!("  k = {k}: none with exponents ≤ {}", limit.max(14)),
        }
    }
    println!("  k = 3: beyond exhaustive reach (≥ 40; difference-scans to ~106 find none)");

    println!("\n=== the semilinear tail (why the classes can't capture 2ⁿ) ===");
    match pow2::fit_tail_class(1, limit) {
        Some(set) => {
            println!("rank-1 tail class fits: {} linear part(s)", set.parts.len());
            for part in &set.parts {
                println!("  offset {} + periods {:?}", part.offset, part.periods);
            }
            // A semilinear tail must disagree with {2ⁿ} somewhere:
            match fc_suite::words::semilinear::refute_semilinear_powers_of_two(&set, 512) {
                Some(n) => println!(
                    "  ⇒ disagrees with {{2ⁿ}} at n = {n} (tail says {}, power-of-two says {})",
                    set.contains(n),
                    is_power_of_two(n)
                ),
                None => println!("  (window too small to exhibit the disagreement)"),
            }
        }
        None => println!("no periodic tail on this window — enlarge the limit"),
    }

    println!("\n=== the Lemma 3.6 collision ===");
    match pow2::pow2_collision(1, limit) {
        Some(class) => {
            let pows: Vec<usize> = class
                .iter()
                .copied()
                .filter(|&n| n > 0 && n & (n - 1) == 0)
                .collect();
            println!("rank-1 class {class:?} contains powers of two {pows:?} *and* non-powers —");
            println!("any rank-1 sentence accepting all of L_pow accepts a non-member. ∎");
        }
        None => println!("no collision on this window"),
    }

    // Semilinear algebra demo: the classes really are semilinear.
    println!("\n=== classes as semilinear sets ===");
    for (i, set) in pow2::classes_as_semilinear(1, limit).iter().enumerate() {
        let profile: Vec<u64> = (0..=limit as u64).filter(|&n| set.contains(n)).collect();
        println!("  class {}: {:?}", i + 1, profile);
        let _ = SemilinearSet::empty();
    }
}
