//! Explore Ehrenfeucht-Fraïssé games: transcripts, winning lines, and the
//! paper's figure diagrams rendered from live plays.
//!
//! ```text
//! cargo run --release --example game_explorer [w] [v] [k]
//! ```

use fc_suite::games::solver::EfSolver;
use fc_suite::games::strategies::{PrimitivePowerStrategy, TableStrategy, UnaryEndAlignedStrategy};
use fc_suite::games::strategy::{play_line, validate_strategy};
use fc_suite::games::{GamePair, Side};
use fc_suite::words::Word;

fn side_name(s: Side) -> &'static str {
    match s {
        Side::A => "A",
        Side::B => "B",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let w = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("aaaa")
        .to_string();
    let v = args.get(2).map(String::as_str).unwrap_or("aaa").to_string();
    let k: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);

    println!("=== EF game over 𝔄_{w} and 𝔅_{v} ===\n");
    let mut solver = EfSolver::of(&w, &v);
    for rounds in 0..=k {
        println!("{w} ≡_{rounds} {v} ? {}", solver.equivalent(rounds));
    }
    println!("(explored {} memoized states)", solver.states_explored());

    match solver.distinguishing_rounds(k) {
        Some(min_k) => {
            println!("\nSpoiler wins with {min_k} round(s); a winning line:");
            for (i, mv) in solver
                .spoiler_winning_line(min_k)
                .unwrap()
                .iter()
                .enumerate()
            {
                let word = match mv.side {
                    Side::A => solver.game().a.render(mv.element),
                    Side::B => solver.game().b.render(mv.element),
                };
                println!(
                    "  round {}: Spoiler picks {}:{word}",
                    i + 1,
                    side_name(mv.side)
                );
            }
        }
        None => {
            println!("\nDuplicator survives all {k} rounds — replaying the table strategy:");
            let game = GamePair::of(&w, &v);
            let strat = TableStrategy::new(game.clone(), k);
            match validate_strategy(&game, &strat, k) {
                None => println!("  table strategy validated against every Spoiler line ✓"),
                Some(f) => println!("  unexpected failure:\n{}", f.render(&game)),
            }
        }
    }

    // Figure 2/3 reproduction: the Primitive Power strategy in action.
    println!("\n=== Figure 2: Duplicator's exponent-swap strategy (Lemma 4.9) ===");
    let (p, q) = (12usize, 14usize);
    let lookup_game = GamePair::of(&"a".repeat(q), &"a".repeat(p));
    let lookup = UnaryEndAlignedStrategy::new(q, p, 7);
    let mut strat = PrimitivePowerStrategy::new(Word::from("ab"), lookup_game, Box::new(lookup));
    let composed = strat.composed_game();
    println!("game: (ab)^{q} vs (ab)^{p}, rank 1");
    let picks = ["bababa", "abab", "babababababababababababa"];
    for pick in picks {
        if let Some(id) = composed.a.id_of(pick.as_bytes()) {
            let (transcript, ok) = play_line(&composed, &mut strat, &[(Side::A, id)]);
            let r = &transcript[0];
            println!(
                "  ┌ Spoiler  A: {:<26} (exp = {})",
                composed.a.render(r.spoiler),
                fc_suite::words::exponent::exp(b"ab", pick.as_bytes()),
            );
            println!(
                "  └ Duplicator B: {:<24} (consistent: {ok})",
                composed.b.render(r.duplicator)
            );
        }
    }
    println!("\n        u₁·wⁿ·u₂ ─────────▶ aⁿ        (read off the exponent)");
    println!("            │                │  𝒢_l     (unary look-up game)");
    println!("            ▼                ▼");
    println!("        u₁·wᵐ·u₂ ◀───────── aᵐ        (swap the exponent back)");
}
