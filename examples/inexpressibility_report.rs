//! Runs the full experiment registry (E01…E18 + figures) and prints every
//! report; optionally writes the JSON archive consumed by EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example inexpressibility_report [quick|full] [out.json]
//! ```

use fc_suite::{run_all, Effort, Status};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let effort = match args.get(1).map(String::as_str) {
        Some("full") => Effort::Full,
        _ => Effort::Quick,
    };
    println!("running the experiment registry at {effort:?} effort…\n");
    let reports = run_all(effort);
    let mut pass = 0;
    let mut fail = 0;
    for rep in &reports {
        print!("{}", rep.render());
        match rep.status {
            Status::Fail => fail += 1,
            _ => pass += 1,
        }
    }
    println!("\n==== {pass} experiments ok, {fail} failed ====");
    if let Some(path) = args.get(2) {
        let lines: Vec<String> = reports
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect();
        let json = format!("[\n{}\n]\n", lines.join(",\n"));
        std::fs::write(path, json).expect("write archive");
        println!("archive written to {path}");
    }
    if fail > 0 {
        std::process::exit(1);
    }
}
