//! Logic workbench: parse FC formulas from text, model-check them, convert
//! to normal forms, and synthesize distinguishing certificates.
//!
//! ```text
//! cargo run --release --example logic_workbench
//! ```

use fc_suite::games::certificate::distinguishing_sentence;
use fc_suite::logic::eval::{holds, satisfying_assignments, Assignment};
use fc_suite::logic::normal_form::{to_nnf, to_prenex};
use fc_suite::logic::parser::parse_formula;
use fc_suite::logic::FactorStructure;

fn main() {
    // 1. Parse a sentence from the ASCII syntax (the paper's φ_ww).
    let src = r#"E x, y: (x = y.y) & !(E z1, z2: ((z1 = z2.x) | (z1 = x.z2)) & !(z2 = eps))"#;
    let phi = parse_formula(src).expect("parse");
    println!("parsed: {phi}");
    println!(
        "qr = {}, pure FC = {}, sentence = {}\n",
        phi.qr(),
        phi.is_pure_fc(),
        phi.is_sentence()
    );

    for w in ["abab", "aba", "aabb", ""] {
        let s = FactorStructure::of_word(if w.is_empty() { "a" } else { w });
        let s = if w.is_empty() {
            FactorStructure::of_str("", s.alphabet())
        } else {
            s
        };
        println!("  {w:6} ⊨ φ_ww ? {}", holds(&phi, &s, &Assignment::new()));
    }

    // 2. Normal forms.
    let nnf = to_nnf(&phi);
    println!("\nNNF: {nnf}");
    let prenex = to_prenex(&phi);
    println!(
        "prenex prefix: {} quantifier(s); matrix qr = {}",
        prenex.prefix.len(),
        prenex.matrix.qr()
    );

    // 3. Free-variable formulas: solve for assignments.
    let open = parse_formula("E z: (x = z.z) & !(z = eps)").expect("parse");
    let s = FactorStructure::of_word("aabaab");
    let sols = satisfying_assignments(&open, &s);
    println!("\n⟦∃z: x = z·z ∧ z ≠ ε⟧(aabaab):");
    for m in &sols {
        for (v, id) in m {
            println!("  {v} ↦ {}", s.render(*id));
        }
    }

    // 4. Certificates: an actual FC sentence separating two words, derived
    //    from Spoiler's winning strategy and verified by the model checker.
    for (w, v, k) in [("ab", "ba", 1u32), ("aaaa", "aaa", 2)] {
        match distinguishing_sentence(w, v, k) {
            Some(cert) => {
                let sw = FactorStructure::of_word(w);
                let sv = FactorStructure::of_word(v);
                println!(
                    "\ncertificate for {w} ≢_{k} {v} (qr ≤ {k}):\n  {cert}\n  ⊨ on {w}: {} | on {v}: {}",
                    holds(&cert, &sw, &Assignment::new()),
                    holds(&cert, &sv, &Assignment::new())
                );
            }
            None => println!("\n{w} ≡_{k} {v} — no certificate exists"),
        }
    }
}
