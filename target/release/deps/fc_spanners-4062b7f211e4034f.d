/root/repo/target/release/deps/fc_spanners-4062b7f211e4034f.d: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

/root/repo/target/release/deps/libfc_spanners-4062b7f211e4034f.rlib: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

/root/repo/target/release/deps/libfc_spanners-4062b7f211e4034f.rmeta: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

crates/spanners/src/lib.rs:
crates/spanners/src/algebra.rs:
crates/spanners/src/correspond.rs:
crates/spanners/src/optimize.rs:
crates/spanners/src/regex_formula.rs:
crates/spanners/src/span.rs:
crates/spanners/src/spanner.rs:
crates/spanners/src/vset_automaton.rs:
