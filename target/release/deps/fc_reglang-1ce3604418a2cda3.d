/root/repo/target/release/deps/fc_reglang-1ce3604418a2cda3.d: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

/root/repo/target/release/deps/libfc_reglang-1ce3604418a2cda3.rlib: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

/root/repo/target/release/deps/libfc_reglang-1ce3604418a2cda3.rmeta: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

crates/reglang/src/lib.rs:
crates/reglang/src/bounded.rs:
crates/reglang/src/derivative.rs:
crates/reglang/src/dfa.rs:
crates/reglang/src/enumerate.rs:
crates/reglang/src/nfa.rs:
crates/reglang/src/ops.rs:
crates/reglang/src/regex.rs:
crates/reglang/src/simple.rs:
