/root/repo/target/release/deps/fc_relations-7ed8482048a73030.d: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

/root/repo/target/release/deps/libfc_relations-7ed8482048a73030.rlib: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

/root/repo/target/release/deps/libfc_relations-7ed8482048a73030.rmeta: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

crates/relations/src/lib.rs:
crates/relations/src/closure.rs:
crates/relations/src/languages.rs:
crates/relations/src/reductions.rs:
crates/relations/src/relations.rs:
crates/relations/src/selectable.rs:
