/root/repo/target/release/deps/fc-3c353db47acb5708.d: src/bin/fc.rs

/root/repo/target/release/deps/fc-3c353db47acb5708: src/bin/fc.rs

src/bin/fc.rs:
