/root/repo/target/release/deps/fc_words-0d4e3ff244e4b1dc.d: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs

/root/repo/target/release/deps/libfc_words-0d4e3ff244e4b1dc.rlib: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs

/root/repo/target/release/deps/libfc_words-0d4e3ff244e4b1dc.rmeta: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs

crates/words/src/lib.rs:
crates/words/src/alphabet.rs:
crates/words/src/conjugacy.rs:
crates/words/src/equations.rs:
crates/words/src/exponent.rs:
crates/words/src/factors.rs:
crates/words/src/fibonacci.rs:
crates/words/src/lyndon.rs:
crates/words/src/periodicity.rs:
crates/words/src/primitivity.rs:
crates/words/src/search.rs:
crates/words/src/semilinear.rs:
crates/words/src/subword.rs:
crates/words/src/word.rs:
