/root/repo/target/release/deps/fc_suite-1cd43c46879955b3.d: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

/root/repo/target/release/deps/libfc_suite-1cd43c46879955b3.rlib: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

/root/repo/target/release/deps/libfc_suite-1cd43c46879955b3.rmeta: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

src/lib.rs:
src/experiments/mod.rs:
src/experiments/fooling_exp.rs:
src/experiments/games_exp.rs:
src/experiments/logic_exp.rs:
src/experiments/spanner_exp.rs:
src/experiments/words_exp.rs:
src/json.rs:
src/report.rs:
