/root/repo/target/debug/examples/logic_workbench-e72e6ad0191ed12a.d: examples/logic_workbench.rs

/root/repo/target/debug/examples/logic_workbench-e72e6ad0191ed12a: examples/logic_workbench.rs

examples/logic_workbench.rs:
