/root/repo/target/debug/examples/fooling_pairs-289e124cf2d31bfe.d: examples/fooling_pairs.rs Cargo.toml

/root/repo/target/debug/examples/libfooling_pairs-289e124cf2d31bfe.rmeta: examples/fooling_pairs.rs Cargo.toml

examples/fooling_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
