/root/repo/target/debug/examples/logic_workbench-a799a6a3b8a0fed2.d: examples/logic_workbench.rs Cargo.toml

/root/repo/target/debug/examples/liblogic_workbench-a799a6a3b8a0fed2.rmeta: examples/logic_workbench.rs Cargo.toml

examples/logic_workbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
