/root/repo/target/debug/examples/inexpressibility_report-b1e3800a76d7ada7.d: examples/inexpressibility_report.rs Cargo.toml

/root/repo/target/debug/examples/libinexpressibility_report-b1e3800a76d7ada7.rmeta: examples/inexpressibility_report.rs Cargo.toml

examples/inexpressibility_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
