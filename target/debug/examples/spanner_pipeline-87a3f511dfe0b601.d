/root/repo/target/debug/examples/spanner_pipeline-87a3f511dfe0b601.d: examples/spanner_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libspanner_pipeline-87a3f511dfe0b601.rmeta: examples/spanner_pipeline.rs Cargo.toml

examples/spanner_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
