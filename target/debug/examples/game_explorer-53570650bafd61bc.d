/root/repo/target/debug/examples/game_explorer-53570650bafd61bc.d: examples/game_explorer.rs

/root/repo/target/debug/examples/game_explorer-53570650bafd61bc: examples/game_explorer.rs

examples/game_explorer.rs:
