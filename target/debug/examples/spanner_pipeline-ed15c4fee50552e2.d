/root/repo/target/debug/examples/spanner_pipeline-ed15c4fee50552e2.d: examples/spanner_pipeline.rs

/root/repo/target/debug/examples/spanner_pipeline-ed15c4fee50552e2: examples/spanner_pipeline.rs

examples/spanner_pipeline.rs:
