/root/repo/target/debug/examples/quickstart-228a300e4a68b259.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-228a300e4a68b259: examples/quickstart.rs

examples/quickstart.rs:
