/root/repo/target/debug/examples/inexpressibility_report-8171dd87b82b7c18.d: examples/inexpressibility_report.rs

/root/repo/target/debug/examples/inexpressibility_report-8171dd87b82b7c18: examples/inexpressibility_report.rs

examples/inexpressibility_report.rs:
