/root/repo/target/debug/examples/unary_arithmetic-cb51991e67693f22.d: examples/unary_arithmetic.rs

/root/repo/target/debug/examples/unary_arithmetic-cb51991e67693f22: examples/unary_arithmetic.rs

examples/unary_arithmetic.rs:
