/root/repo/target/debug/examples/unary_arithmetic-291df68b65462ed8.d: examples/unary_arithmetic.rs Cargo.toml

/root/repo/target/debug/examples/libunary_arithmetic-291df68b65462ed8.rmeta: examples/unary_arithmetic.rs Cargo.toml

examples/unary_arithmetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
