/root/repo/target/debug/examples/game_explorer-ae7088262c1032df.d: examples/game_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libgame_explorer-ae7088262c1032df.rmeta: examples/game_explorer.rs Cargo.toml

examples/game_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
