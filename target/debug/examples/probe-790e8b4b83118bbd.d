/root/repo/target/debug/examples/probe-790e8b4b83118bbd.d: crates/core/examples/probe.rs Cargo.toml

/root/repo/target/debug/examples/libprobe-790e8b4b83118bbd.rmeta: crates/core/examples/probe.rs Cargo.toml

crates/core/examples/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
