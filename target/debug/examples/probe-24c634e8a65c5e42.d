/root/repo/target/debug/examples/probe-24c634e8a65c5e42.d: crates/core/examples/probe.rs

/root/repo/target/debug/examples/probe-24c634e8a65c5e42: crates/core/examples/probe.rs

crates/core/examples/probe.rs:
