/root/repo/target/debug/examples/fooling_pairs-9bcf75b19500dc1a.d: examples/fooling_pairs.rs

/root/repo/target/debug/examples/fooling_pairs-9bcf75b19500dc1a: examples/fooling_pairs.rs

examples/fooling_pairs.rs:
