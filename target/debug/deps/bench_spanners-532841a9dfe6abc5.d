/root/repo/target/debug/deps/bench_spanners-532841a9dfe6abc5.d: crates/bench/benches/bench_spanners.rs Cargo.toml

/root/repo/target/debug/deps/libbench_spanners-532841a9dfe6abc5.rmeta: crates/bench/benches/bench_spanners.rs Cargo.toml

crates/bench/benches/bench_spanners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
