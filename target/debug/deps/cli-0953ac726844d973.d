/root/repo/target/debug/deps/cli-0953ac726844d973.d: tests/cli.rs

/root/repo/target/debug/deps/cli-0953ac726844d973: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_fc=/root/repo/target/debug/fc
