/root/repo/target/debug/deps/fc_spanners-034f7c67af623ff3.d: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

/root/repo/target/debug/deps/fc_spanners-034f7c67af623ff3: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

crates/spanners/src/lib.rs:
crates/spanners/src/algebra.rs:
crates/spanners/src/correspond.rs:
crates/spanners/src/optimize.rs:
crates/spanners/src/regex_formula.rs:
crates/spanners/src/span.rs:
crates/spanners/src/spanner.rs:
crates/spanners/src/vset_automaton.rs:
