/root/repo/target/debug/deps/bench_words-1f4882832b678aac.d: crates/bench/benches/bench_words.rs Cargo.toml

/root/repo/target/debug/deps/libbench_words-1f4882832b678aac.rmeta: crates/bench/benches/bench_words.rs Cargo.toml

crates/bench/benches/bench_words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
