/root/repo/target/debug/deps/spanner_fc_correspondence-e91d69a5ecdd75e6.d: tests/spanner_fc_correspondence.rs Cargo.toml

/root/repo/target/debug/deps/libspanner_fc_correspondence-e91d69a5ecdd75e6.rmeta: tests/spanner_fc_correspondence.rs Cargo.toml

tests/spanner_fc_correspondence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
