/root/repo/target/debug/deps/strategy_compositions-83987d59d745fbc0.d: tests/strategy_compositions.rs

/root/repo/target/debug/deps/strategy_compositions-83987d59d745fbc0: tests/strategy_compositions.rs

tests/strategy_compositions.rs:
