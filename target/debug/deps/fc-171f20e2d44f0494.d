/root/repo/target/debug/deps/fc-171f20e2d44f0494.d: src/bin/fc.rs

/root/repo/target/debug/deps/fc-171f20e2d44f0494: src/bin/fc.rs

src/bin/fc.rs:
