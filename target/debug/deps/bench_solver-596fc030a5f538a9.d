/root/repo/target/debug/deps/bench_solver-596fc030a5f538a9.d: crates/bench/benches/bench_solver.rs Cargo.toml

/root/repo/target/debug/deps/libbench_solver-596fc030a5f538a9.rmeta: crates/bench/benches/bench_solver.rs Cargo.toml

crates/bench/benches/bench_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
