/root/repo/target/debug/deps/fooling_endtoend-fc65a1ddce029493.d: tests/fooling_endtoend.rs Cargo.toml

/root/repo/target/debug/deps/libfooling_endtoend-fc65a1ddce029493.rmeta: tests/fooling_endtoend.rs Cargo.toml

tests/fooling_endtoend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
