/root/repo/target/debug/deps/cli-97cee16ecf79b9cb.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-97cee16ecf79b9cb.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_fc=placeholder:fc
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
