/root/repo/target/debug/deps/fc_games-7b22da841e826c98.d: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/certificate.rs crates/core/src/existential.rs crates/core/src/fooling.rs crates/core/src/hintikka.rs crates/core/src/lemmas.rs crates/core/src/partial_iso.rs crates/core/src/pebble.rs crates/core/src/pow2.rs crates/core/src/solver.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/chain.rs crates/core/src/strategies/identity.rs crates/core/src/strategies/primitive_power.rs crates/core/src/strategies/pseudo_congruence.rs crates/core/src/strategies/table.rs crates/core/src/strategies/unary.rs crates/core/src/strategy.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libfc_games-7b22da841e826c98.rmeta: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/certificate.rs crates/core/src/existential.rs crates/core/src/fooling.rs crates/core/src/hintikka.rs crates/core/src/lemmas.rs crates/core/src/partial_iso.rs crates/core/src/pebble.rs crates/core/src/pow2.rs crates/core/src/solver.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/chain.rs crates/core/src/strategies/identity.rs crates/core/src/strategies/primitive_power.rs crates/core/src/strategies/pseudo_congruence.rs crates/core/src/strategies/table.rs crates/core/src/strategies/unary.rs crates/core/src/strategy.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/arena.rs:
crates/core/src/certificate.rs:
crates/core/src/existential.rs:
crates/core/src/fooling.rs:
crates/core/src/hintikka.rs:
crates/core/src/lemmas.rs:
crates/core/src/partial_iso.rs:
crates/core/src/pebble.rs:
crates/core/src/pow2.rs:
crates/core/src/solver.rs:
crates/core/src/strategies/mod.rs:
crates/core/src/strategies/chain.rs:
crates/core/src/strategies/identity.rs:
crates/core/src/strategies/primitive_power.rs:
crates/core/src/strategies/pseudo_congruence.rs:
crates/core/src/strategies/table.rs:
crates/core/src/strategies/unary.rs:
crates/core/src/strategy.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
