/root/repo/target/debug/deps/fc_reglang-a084a2c2e889c53a.d: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

/root/repo/target/debug/deps/libfc_reglang-a084a2c2e889c53a.rlib: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

/root/repo/target/debug/deps/libfc_reglang-a084a2c2e889c53a.rmeta: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

crates/reglang/src/lib.rs:
crates/reglang/src/bounded.rs:
crates/reglang/src/derivative.rs:
crates/reglang/src/dfa.rs:
crates/reglang/src/enumerate.rs:
crates/reglang/src/nfa.rs:
crates/reglang/src/ops.rs:
crates/reglang/src/regex.rs:
crates/reglang/src/simple.rs:
