/root/repo/target/debug/deps/fc_bench-192cd0c2cd55c8e0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfc_bench-192cd0c2cd55c8e0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfc_bench-192cd0c2cd55c8e0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
