/root/repo/target/debug/deps/analysis_corpus-e451fbd766ecab0f.d: crates/fc/tests/analysis_corpus.rs

/root/repo/target/debug/deps/analysis_corpus-e451fbd766ecab0f: crates/fc/tests/analysis_corpus.rs

crates/fc/tests/analysis_corpus.rs:
