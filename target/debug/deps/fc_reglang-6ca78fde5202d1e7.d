/root/repo/target/debug/deps/fc_reglang-6ca78fde5202d1e7.d: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs Cargo.toml

/root/repo/target/debug/deps/libfc_reglang-6ca78fde5202d1e7.rmeta: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs Cargo.toml

crates/reglang/src/lib.rs:
crates/reglang/src/bounded.rs:
crates/reglang/src/derivative.rs:
crates/reglang/src/dfa.rs:
crates/reglang/src/enumerate.rs:
crates/reglang/src/nfa.rs:
crates/reglang/src/ops.rs:
crates/reglang/src/regex.rs:
crates/reglang/src/simple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
