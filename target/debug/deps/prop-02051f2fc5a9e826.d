/root/repo/target/debug/deps/prop-02051f2fc5a9e826.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-02051f2fc5a9e826: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
