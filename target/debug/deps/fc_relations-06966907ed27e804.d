/root/repo/target/debug/deps/fc_relations-06966907ed27e804.d: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs Cargo.toml

/root/repo/target/debug/deps/libfc_relations-06966907ed27e804.rmeta: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs Cargo.toml

crates/relations/src/lib.rs:
crates/relations/src/closure.rs:
crates/relations/src/languages.rs:
crates/relations/src/reductions.rs:
crates/relations/src/relations.rs:
crates/relations/src/selectable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
