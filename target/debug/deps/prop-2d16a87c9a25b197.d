/root/repo/target/debug/deps/prop-2d16a87c9a25b197.d: crates/words/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-2d16a87c9a25b197.rmeta: crates/words/tests/prop.rs Cargo.toml

crates/words/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
