/root/repo/target/debug/deps/ef_theorem-8f8e1b735812851b.d: tests/ef_theorem.rs

/root/repo/target/debug/deps/ef_theorem-8f8e1b735812851b: tests/ef_theorem.rs

tests/ef_theorem.rs:
