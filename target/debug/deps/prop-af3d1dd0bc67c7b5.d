/root/repo/target/debug/deps/prop-af3d1dd0bc67c7b5.d: crates/spanners/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-af3d1dd0bc67c7b5.rmeta: crates/spanners/tests/prop.rs Cargo.toml

crates/spanners/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
