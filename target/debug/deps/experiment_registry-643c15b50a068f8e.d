/root/repo/target/debug/deps/experiment_registry-643c15b50a068f8e.d: tests/experiment_registry.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_registry-643c15b50a068f8e.rmeta: tests/experiment_registry.rs Cargo.toml

tests/experiment_registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
