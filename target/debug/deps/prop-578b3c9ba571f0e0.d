/root/repo/target/debug/deps/prop-578b3c9ba571f0e0.d: crates/reglang/tests/prop.rs

/root/repo/target/debug/deps/prop-578b3c9ba571f0e0: crates/reglang/tests/prop.rs

crates/reglang/tests/prop.rs:
