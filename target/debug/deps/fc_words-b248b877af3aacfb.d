/root/repo/target/debug/deps/fc_words-b248b877af3aacfb.d: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs

/root/repo/target/debug/deps/fc_words-b248b877af3aacfb: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs

crates/words/src/lib.rs:
crates/words/src/alphabet.rs:
crates/words/src/conjugacy.rs:
crates/words/src/equations.rs:
crates/words/src/exponent.rs:
crates/words/src/factors.rs:
crates/words/src/fibonacci.rs:
crates/words/src/lyndon.rs:
crates/words/src/periodicity.rs:
crates/words/src/primitivity.rs:
crates/words/src/search.rs:
crates/words/src/semilinear.rs:
crates/words/src/subword.rs:
crates/words/src/word.rs:
