/root/repo/target/debug/deps/bench_fooling-228f9eb56fe00180.d: crates/bench/benches/bench_fooling.rs Cargo.toml

/root/repo/target/debug/deps/libbench_fooling-228f9eb56fe00180.rmeta: crates/bench/benches/bench_fooling.rs Cargo.toml

crates/bench/benches/bench_fooling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
