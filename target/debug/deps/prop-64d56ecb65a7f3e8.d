/root/repo/target/debug/deps/prop-64d56ecb65a7f3e8.d: crates/relations/tests/prop.rs

/root/repo/target/debug/deps/prop-64d56ecb65a7f3e8: crates/relations/tests/prop.rs

crates/relations/tests/prop.rs:
