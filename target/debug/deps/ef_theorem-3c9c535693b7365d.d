/root/repo/target/debug/deps/ef_theorem-3c9c535693b7365d.d: tests/ef_theorem.rs Cargo.toml

/root/repo/target/debug/deps/libef_theorem-3c9c535693b7365d.rmeta: tests/ef_theorem.rs Cargo.toml

tests/ef_theorem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
