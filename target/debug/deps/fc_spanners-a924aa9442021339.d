/root/repo/target/debug/deps/fc_spanners-a924aa9442021339.d: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs Cargo.toml

/root/repo/target/debug/deps/libfc_spanners-a924aa9442021339.rmeta: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs Cargo.toml

crates/spanners/src/lib.rs:
crates/spanners/src/algebra.rs:
crates/spanners/src/correspond.rs:
crates/spanners/src/optimize.rs:
crates/spanners/src/regex_formula.rs:
crates/spanners/src/span.rs:
crates/spanners/src/spanner.rs:
crates/spanners/src/vset_automaton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
