/root/repo/target/debug/deps/fc_bench-8e05b67a3bc06f48.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fc_bench-8e05b67a3bc06f48: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
