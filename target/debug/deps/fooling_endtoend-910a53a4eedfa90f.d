/root/repo/target/debug/deps/fooling_endtoend-910a53a4eedfa90f.d: tests/fooling_endtoend.rs

/root/repo/target/debug/deps/fooling_endtoend-910a53a4eedfa90f: tests/fooling_endtoend.rs

tests/fooling_endtoend.rs:
