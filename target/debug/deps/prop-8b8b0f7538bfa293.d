/root/repo/target/debug/deps/prop-8b8b0f7538bfa293.d: crates/words/tests/prop.rs

/root/repo/target/debug/deps/prop-8b8b0f7538bfa293: crates/words/tests/prop.rs

crates/words/tests/prop.rs:
