/root/repo/target/debug/deps/fc-ff34fff1c0bc483c.d: src/bin/fc.rs

/root/repo/target/debug/deps/fc-ff34fff1c0bc483c: src/bin/fc.rs

src/bin/fc.rs:
