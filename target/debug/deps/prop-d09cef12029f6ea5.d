/root/repo/target/debug/deps/prop-d09cef12029f6ea5.d: crates/relations/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-d09cef12029f6ea5.rmeta: crates/relations/tests/prop.rs Cargo.toml

crates/relations/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
