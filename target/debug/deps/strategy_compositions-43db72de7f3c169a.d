/root/repo/target/debug/deps/strategy_compositions-43db72de7f3c169a.d: tests/strategy_compositions.rs Cargo.toml

/root/repo/target/debug/deps/libstrategy_compositions-43db72de7f3c169a.rmeta: tests/strategy_compositions.rs Cargo.toml

tests/strategy_compositions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
