/root/repo/target/debug/deps/experiment_registry-f4cee977147e8441.d: tests/experiment_registry.rs

/root/repo/target/debug/deps/experiment_registry-f4cee977147e8441: tests/experiment_registry.rs

tests/experiment_registry.rs:
