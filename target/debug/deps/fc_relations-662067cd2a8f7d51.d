/root/repo/target/debug/deps/fc_relations-662067cd2a8f7d51.d: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

/root/repo/target/debug/deps/fc_relations-662067cd2a8f7d51: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

crates/relations/src/lib.rs:
crates/relations/src/closure.rs:
crates/relations/src/languages.rs:
crates/relations/src/reductions.rs:
crates/relations/src/relations.rs:
crates/relations/src/selectable.rs:
