/root/repo/target/debug/deps/fc_logic-a8bb5d7a18463343.d: crates/fc/src/lib.rs crates/fc/src/analysis/mod.rs crates/fc/src/analysis/semantic.rs crates/fc/src/analysis/syntactic.rs crates/fc/src/eval.rs crates/fc/src/foeq.rs crates/fc/src/formula.rs crates/fc/src/language.rs crates/fc/src/library.rs crates/fc/src/normal_form.rs crates/fc/src/parser.rs crates/fc/src/reg_to_fc.rs crates/fc/src/span.rs crates/fc/src/structure.rs Cargo.toml

/root/repo/target/debug/deps/libfc_logic-a8bb5d7a18463343.rmeta: crates/fc/src/lib.rs crates/fc/src/analysis/mod.rs crates/fc/src/analysis/semantic.rs crates/fc/src/analysis/syntactic.rs crates/fc/src/eval.rs crates/fc/src/foeq.rs crates/fc/src/formula.rs crates/fc/src/language.rs crates/fc/src/library.rs crates/fc/src/normal_form.rs crates/fc/src/parser.rs crates/fc/src/reg_to_fc.rs crates/fc/src/span.rs crates/fc/src/structure.rs Cargo.toml

crates/fc/src/lib.rs:
crates/fc/src/analysis/mod.rs:
crates/fc/src/analysis/semantic.rs:
crates/fc/src/analysis/syntactic.rs:
crates/fc/src/eval.rs:
crates/fc/src/foeq.rs:
crates/fc/src/formula.rs:
crates/fc/src/language.rs:
crates/fc/src/library.rs:
crates/fc/src/normal_form.rs:
crates/fc/src/parser.rs:
crates/fc/src/reg_to_fc.rs:
crates/fc/src/span.rs:
crates/fc/src/structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
