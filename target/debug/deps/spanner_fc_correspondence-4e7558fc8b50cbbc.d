/root/repo/target/debug/deps/spanner_fc_correspondence-4e7558fc8b50cbbc.d: tests/spanner_fc_correspondence.rs

/root/repo/target/debug/deps/spanner_fc_correspondence-4e7558fc8b50cbbc: tests/spanner_fc_correspondence.rs

tests/spanner_fc_correspondence.rs:
