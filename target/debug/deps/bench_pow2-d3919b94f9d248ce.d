/root/repo/target/debug/deps/bench_pow2-d3919b94f9d248ce.d: crates/bench/benches/bench_pow2.rs Cargo.toml

/root/repo/target/debug/deps/libbench_pow2-d3919b94f9d248ce.rmeta: crates/bench/benches/bench_pow2.rs Cargo.toml

crates/bench/benches/bench_pow2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
