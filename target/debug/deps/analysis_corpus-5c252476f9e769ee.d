/root/repo/target/debug/deps/analysis_corpus-5c252476f9e769ee.d: crates/fc/tests/analysis_corpus.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_corpus-5c252476f9e769ee.rmeta: crates/fc/tests/analysis_corpus.rs Cargo.toml

crates/fc/tests/analysis_corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
