/root/repo/target/debug/deps/bench_modelcheck-e757db51337786c3.d: crates/bench/benches/bench_modelcheck.rs Cargo.toml

/root/repo/target/debug/deps/libbench_modelcheck-e757db51337786c3.rmeta: crates/bench/benches/bench_modelcheck.rs Cargo.toml

crates/bench/benches/bench_modelcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
