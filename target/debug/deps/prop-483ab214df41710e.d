/root/repo/target/debug/deps/prop-483ab214df41710e.d: crates/fc/tests/prop.rs

/root/repo/target/debug/deps/prop-483ab214df41710e: crates/fc/tests/prop.rs

crates/fc/tests/prop.rs:
