/root/repo/target/debug/deps/bounded_transfer-fe971bb868a87cf0.d: tests/bounded_transfer.rs Cargo.toml

/root/repo/target/debug/deps/libbounded_transfer-fe971bb868a87cf0.rmeta: tests/bounded_transfer.rs Cargo.toml

tests/bounded_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
