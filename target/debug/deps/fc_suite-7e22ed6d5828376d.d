/root/repo/target/debug/deps/fc_suite-7e22ed6d5828376d.d: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

/root/repo/target/debug/deps/libfc_suite-7e22ed6d5828376d.rlib: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

/root/repo/target/debug/deps/libfc_suite-7e22ed6d5828376d.rmeta: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

src/lib.rs:
src/experiments/mod.rs:
src/experiments/fooling_exp.rs:
src/experiments/games_exp.rs:
src/experiments/logic_exp.rs:
src/experiments/spanner_exp.rs:
src/experiments/words_exp.rs:
src/json.rs:
src/report.rs:
