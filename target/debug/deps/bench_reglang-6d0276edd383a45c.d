/root/repo/target/debug/deps/bench_reglang-6d0276edd383a45c.d: crates/bench/benches/bench_reglang.rs Cargo.toml

/root/repo/target/debug/deps/libbench_reglang-6d0276edd383a45c.rmeta: crates/bench/benches/bench_reglang.rs Cargo.toml

crates/bench/benches/bench_reglang.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
