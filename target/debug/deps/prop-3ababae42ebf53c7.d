/root/repo/target/debug/deps/prop-3ababae42ebf53c7.d: crates/reglang/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-3ababae42ebf53c7.rmeta: crates/reglang/tests/prop.rs Cargo.toml

crates/reglang/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
