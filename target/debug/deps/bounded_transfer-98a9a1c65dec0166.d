/root/repo/target/debug/deps/bounded_transfer-98a9a1c65dec0166.d: tests/bounded_transfer.rs

/root/repo/target/debug/deps/bounded_transfer-98a9a1c65dec0166: tests/bounded_transfer.rs

tests/bounded_transfer.rs:
