/root/repo/target/debug/deps/fc_logic-455c3e21992884e7.d: crates/fc/src/lib.rs crates/fc/src/analysis/mod.rs crates/fc/src/analysis/semantic.rs crates/fc/src/analysis/syntactic.rs crates/fc/src/eval.rs crates/fc/src/foeq.rs crates/fc/src/formula.rs crates/fc/src/language.rs crates/fc/src/library.rs crates/fc/src/normal_form.rs crates/fc/src/parser.rs crates/fc/src/reg_to_fc.rs crates/fc/src/span.rs crates/fc/src/structure.rs

/root/repo/target/debug/deps/fc_logic-455c3e21992884e7: crates/fc/src/lib.rs crates/fc/src/analysis/mod.rs crates/fc/src/analysis/semantic.rs crates/fc/src/analysis/syntactic.rs crates/fc/src/eval.rs crates/fc/src/foeq.rs crates/fc/src/formula.rs crates/fc/src/language.rs crates/fc/src/library.rs crates/fc/src/normal_form.rs crates/fc/src/parser.rs crates/fc/src/reg_to_fc.rs crates/fc/src/span.rs crates/fc/src/structure.rs

crates/fc/src/lib.rs:
crates/fc/src/analysis/mod.rs:
crates/fc/src/analysis/semantic.rs:
crates/fc/src/analysis/syntactic.rs:
crates/fc/src/eval.rs:
crates/fc/src/foeq.rs:
crates/fc/src/formula.rs:
crates/fc/src/language.rs:
crates/fc/src/library.rs:
crates/fc/src/normal_form.rs:
crates/fc/src/parser.rs:
crates/fc/src/reg_to_fc.rs:
crates/fc/src/span.rs:
crates/fc/src/structure.rs:
