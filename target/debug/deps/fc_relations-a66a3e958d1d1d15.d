/root/repo/target/debug/deps/fc_relations-a66a3e958d1d1d15.d: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

/root/repo/target/debug/deps/libfc_relations-a66a3e958d1d1d15.rlib: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

/root/repo/target/debug/deps/libfc_relations-a66a3e958d1d1d15.rmeta: crates/relations/src/lib.rs crates/relations/src/closure.rs crates/relations/src/languages.rs crates/relations/src/reductions.rs crates/relations/src/relations.rs crates/relations/src/selectable.rs

crates/relations/src/lib.rs:
crates/relations/src/closure.rs:
crates/relations/src/languages.rs:
crates/relations/src/reductions.rs:
crates/relations/src/relations.rs:
crates/relations/src/selectable.rs:
