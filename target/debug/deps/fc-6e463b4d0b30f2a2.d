/root/repo/target/debug/deps/fc-6e463b4d0b30f2a2.d: src/bin/fc.rs Cargo.toml

/root/repo/target/debug/deps/libfc-6e463b4d0b30f2a2.rmeta: src/bin/fc.rs Cargo.toml

src/bin/fc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
