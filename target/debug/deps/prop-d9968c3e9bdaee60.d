/root/repo/target/debug/deps/prop-d9968c3e9bdaee60.d: crates/spanners/tests/prop.rs

/root/repo/target/debug/deps/prop-d9968c3e9bdaee60: crates/spanners/tests/prop.rs

crates/spanners/tests/prop.rs:
