/root/repo/target/debug/deps/fc_spanners-9900c718e6921511.d: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

/root/repo/target/debug/deps/libfc_spanners-9900c718e6921511.rlib: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

/root/repo/target/debug/deps/libfc_spanners-9900c718e6921511.rmeta: crates/spanners/src/lib.rs crates/spanners/src/algebra.rs crates/spanners/src/correspond.rs crates/spanners/src/optimize.rs crates/spanners/src/regex_formula.rs crates/spanners/src/span.rs crates/spanners/src/spanner.rs crates/spanners/src/vset_automaton.rs

crates/spanners/src/lib.rs:
crates/spanners/src/algebra.rs:
crates/spanners/src/correspond.rs:
crates/spanners/src/optimize.rs:
crates/spanners/src/regex_formula.rs:
crates/spanners/src/span.rs:
crates/spanners/src/spanner.rs:
crates/spanners/src/vset_automaton.rs:
