/root/repo/target/debug/deps/fc_suite-165261e455bd84c0.d: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs Cargo.toml

/root/repo/target/debug/deps/libfc_suite-165261e455bd84c0.rmeta: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs Cargo.toml

src/lib.rs:
src/experiments/mod.rs:
src/experiments/fooling_exp.rs:
src/experiments/games_exp.rs:
src/experiments/logic_exp.rs:
src/experiments/spanner_exp.rs:
src/experiments/words_exp.rs:
src/json.rs:
src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
