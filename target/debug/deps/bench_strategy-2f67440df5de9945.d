/root/repo/target/debug/deps/bench_strategy-2f67440df5de9945.d: crates/bench/benches/bench_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libbench_strategy-2f67440df5de9945.rmeta: crates/bench/benches/bench_strategy.rs Cargo.toml

crates/bench/benches/bench_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
