/root/repo/target/debug/deps/prop-b124a90eb1c2c03e.d: crates/core/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-b124a90eb1c2c03e.rmeta: crates/core/tests/prop.rs Cargo.toml

crates/core/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
