/root/repo/target/debug/deps/fc_words-c079d4dc5fcdeec3.d: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libfc_words-c079d4dc5fcdeec3.rmeta: crates/words/src/lib.rs crates/words/src/alphabet.rs crates/words/src/conjugacy.rs crates/words/src/equations.rs crates/words/src/exponent.rs crates/words/src/factors.rs crates/words/src/fibonacci.rs crates/words/src/lyndon.rs crates/words/src/periodicity.rs crates/words/src/primitivity.rs crates/words/src/search.rs crates/words/src/semilinear.rs crates/words/src/subword.rs crates/words/src/word.rs Cargo.toml

crates/words/src/lib.rs:
crates/words/src/alphabet.rs:
crates/words/src/conjugacy.rs:
crates/words/src/equations.rs:
crates/words/src/exponent.rs:
crates/words/src/factors.rs:
crates/words/src/fibonacci.rs:
crates/words/src/lyndon.rs:
crates/words/src/periodicity.rs:
crates/words/src/primitivity.rs:
crates/words/src/search.rs:
crates/words/src/semilinear.rs:
crates/words/src/subword.rs:
crates/words/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
