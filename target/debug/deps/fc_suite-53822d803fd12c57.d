/root/repo/target/debug/deps/fc_suite-53822d803fd12c57.d: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

/root/repo/target/debug/deps/fc_suite-53822d803fd12c57: src/lib.rs src/experiments/mod.rs src/experiments/fooling_exp.rs src/experiments/games_exp.rs src/experiments/logic_exp.rs src/experiments/spanner_exp.rs src/experiments/words_exp.rs src/json.rs src/report.rs

src/lib.rs:
src/experiments/mod.rs:
src/experiments/fooling_exp.rs:
src/experiments/games_exp.rs:
src/experiments/logic_exp.rs:
src/experiments/spanner_exp.rs:
src/experiments/words_exp.rs:
src/json.rs:
src/report.rs:
