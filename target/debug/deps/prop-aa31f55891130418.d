/root/repo/target/debug/deps/prop-aa31f55891130418.d: crates/fc/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-aa31f55891130418.rmeta: crates/fc/tests/prop.rs Cargo.toml

crates/fc/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
