/root/repo/target/debug/deps/fc_reglang-fa7784f3dbd4f0df.d: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

/root/repo/target/debug/deps/fc_reglang-fa7784f3dbd4f0df: crates/reglang/src/lib.rs crates/reglang/src/bounded.rs crates/reglang/src/derivative.rs crates/reglang/src/dfa.rs crates/reglang/src/enumerate.rs crates/reglang/src/nfa.rs crates/reglang/src/ops.rs crates/reglang/src/regex.rs crates/reglang/src/simple.rs

crates/reglang/src/lib.rs:
crates/reglang/src/bounded.rs:
crates/reglang/src/derivative.rs:
crates/reglang/src/dfa.rs:
crates/reglang/src/enumerate.rs:
crates/reglang/src/nfa.rs:
crates/reglang/src/ops.rs:
crates/reglang/src/regex.rs:
crates/reglang/src/simple.rs:
