#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh          (from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> solver perf smokes (E08 confirmation + P9 batch classify on Σ^≤4 k=2 + E08/E09 scan tripwires, release, generous budgets)"
cargo test -q --offline --release -p fc-games --test perf_smoke -- --nocapture --skip pr10_

echo "==> PR10 tripwires (guided-ordering state budgets on the E08/E09 confirmations; shared-table hit-rate floor on the E09 reconfirmation; release)"
cargo test -q --offline --release -p fc-games --test perf_smoke pr10_ -- --nocapture

echo "==> arith-tier acceptance grid (u^p vs u^q, |u| <= 3, p,q <= 20, k <= 2, release; debug builds run the reduced grid in tier-1)"
cargo test -q --offline --release -p fc-games --test arith_diff

echo "==> eval + structure perf smokes (phi_fib n = 4 member; succinct backend on |w| = 10^4; release, generous budgets)"
cargo test -q --offline --release -p fc-logic --test perf_smoke -- --nocapture

echo "==> fc serve smoke (ephemeral port, small loadgen replay, plan-cache hits, clean shutdown)"
cargo build --release --offline -p fc-serve --bin fc-loadgen
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE" # fc serve creates it after binding; absence is the readiness signal
./target/release/fc serve --addr 127.0.0.1:0 --port-file "$PORT_FILE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "fc serve never wrote its port file" >&2; kill "$SERVE_PID" 2>/dev/null; exit 1; }
ADDR="$(head -n1 "$PORT_FILE")"
./target/release/fc-loadgen --addr "$ADDR" --requests 2000 --clients 4 --expect-cache-hits --shutdown
wait "$SERVE_PID" # clean exit after the loadgen's shutdown request
rm -f "$PORT_FILE"

echo "All checks passed."
