#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh          (from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> solver perf smokes (E08 confirmation + P9 batch classify on Σ^≤4 k=2, release, generous budgets)"
cargo test -q --offline --release -p fc-games --test perf_smoke -- --nocapture

echo "==> eval + structure perf smokes (phi_fib n = 4 member; succinct backend on |w| = 10^4; release, generous budgets)"
cargo test -q --offline --release -p fc-logic --test perf_smoke -- --nocapture

echo "All checks passed."
