#!/usr/bin/env bash
# Machine-readable perf snapshot: times the headline workloads (E03 scan,
# E24 class table, E08/E09 fooling confirmations, fc-serve throughput and
# latency) on the naive and batch paths and writes BENCH_PR<N>.json at the
# repo root.
#
# Usage: scripts/bench_snapshot.sh [N]     (from anywhere; default N = 10)
#
# PR 10 adds the shared-transposition-table legs: bare E08/E09
# confirmation walls, the window-rescan table hit rate, and the
# bytes-capped-under-churn check (pr10_* fields).
#
# The PR = 9 snapshot also computes the rank-3 unary class table
# (FC_SNAPSHOT_RANK3=1): a ~25-minute fast-engine sweep that records the
# k = 3 minimal pair and its semilinear tail in the JSON. Later snapshots
# skip it — the discovery is one-time and archived in BENCH_PR9.json —
# but exporting FC_SNAPSHOT_RANK3=1 re-enables it.
set -euo pipefail

cd "$(dirname "$0")/.."

PR="${1:-10}"
OUT="BENCH_PR${PR}.json"

echo "==> building snapshot binary (release)"
cargo build --release --offline -p fc-bench --bin snapshot

echo "==> timing headline workloads"
if [ "$PR" -eq 9 ]; then
  FC_SNAPSHOT_RANK3=1 ./target/release/snapshot > "$OUT"
else
  ./target/release/snapshot > "$OUT"
fi

echo "==> wrote $OUT"
cat "$OUT"
