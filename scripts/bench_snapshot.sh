#!/usr/bin/env bash
# Machine-readable perf snapshot: times the headline workloads (E03 scan,
# E24 class table, E08/E09 fooling confirmations, fc-serve throughput and
# latency) on the naive and batch paths and writes BENCH_PR<N>.json at the
# repo root.
#
# Usage: scripts/bench_snapshot.sh [N]     (from anywhere; default N = 8)
set -euo pipefail

cd "$(dirname "$0")/.."

PR="${1:-8}"
OUT="BENCH_PR${PR}.json"

echo "==> building snapshot binary (release)"
cargo build --release --offline -p fc-bench --bin snapshot

echo "==> timing headline workloads"
./target/release/snapshot > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
